package rrr

import (
	"encoding/binary"

	"influmax/internal/graph"
)

// CompressedCollection stores RRR sets delta+varint encoded: because the
// compact layout keeps each sample sorted, consecutive member ids are
// ascending and their gaps are small on clustered graphs, so most gaps fit
// one byte. This pushes the paper's memory-footprint optimization
// (Section 3.1, Table 2) one step further, trading decode time during seed
// selection for a 2-4x smaller store — the trade-off quantified by
// BenchmarkAblationCompressedStore.
type CompressedCollection struct {
	n       int
	offsets []int64 // byte offsets into data; len = Count()+1
	sizes   []int32 // cardinality of each sample
	data    []byte
}

// NewCompressedCollection returns an empty compressed store over n
// vertices.
func NewCompressedCollection(n int) *CompressedCollection {
	return &CompressedCollection{n: n, offsets: []int64{0}}
}

// NumVertices returns the vertex-universe size.
func (c *CompressedCollection) NumVertices() int { return c.n }

// Count returns the number of stored samples.
func (c *CompressedCollection) Count() int { return len(c.offsets) - 1 }

// TotalSize returns the summed cardinality of all samples.
func (c *CompressedCollection) TotalSize() int64 {
	var t int64
	for _, s := range c.sizes {
		t += int64(s)
	}
	return t
}

// Append adds one sample; the vertex list must be sorted ascending and
// duplicate-free.
func (c *CompressedCollection) Append(set []graph.Vertex) {
	prev := uint32(0)
	for i, v := range set {
		delta := uint64(v)
		if i > 0 {
			delta = uint64(v - prev - 1) // gaps are >= 1 in a strict ascent
		}
		c.data = binary.AppendUvarint(c.data, delta)
		prev = v
	}
	c.offsets = append(c.offsets, int64(len(c.data)))
	c.sizes = append(c.sizes, int32(len(set)))
}

// Sample decodes the i-th sample into buf (reused if capacious) and
// returns it sorted ascending.
func (c *CompressedCollection) Sample(i int, buf []graph.Vertex) []graph.Vertex {
	return c.AppendSample(i, buf[:0])
}

// AppendSample decodes the i-th sample and appends its members, ascending,
// to buf (which is returned). Unlike Sample it does not reset buf, so
// several samples can be decoded into one flat arena — the scratch layout
// sketch-serving seed selection purges through.
func (c *CompressedCollection) AppendSample(i int, buf []graph.Vertex) []graph.Vertex {
	data := c.data[c.offsets[i]:c.offsets[i+1]]
	prev := uint32(0)
	pos := 0
	for j := int32(0); j < c.sizes[i]; j++ {
		delta, n := binary.Uvarint(data[pos:])
		pos += n
		v := uint32(delta)
		if j > 0 {
			v = prev + 1 + uint32(delta)
		}
		buf = append(buf, v)
		prev = v
	}
	return buf
}

// Contains reports membership of v in sample i by streaming the deltas
// (early exit once the running id passes v).
func (c *CompressedCollection) Contains(i int, v graph.Vertex) bool {
	data := c.data[c.offsets[i]:c.offsets[i+1]]
	prev := uint32(0)
	pos := 0
	for j := int32(0); j < c.sizes[i]; j++ {
		delta, n := binary.Uvarint(data[pos:])
		pos += n
		cur := uint32(delta)
		if j > 0 {
			cur = prev + 1 + uint32(delta)
		}
		if cur == v {
			return true
		}
		if cur > v {
			return false
		}
		prev = cur
	}
	return false
}

// visitRange streams sample i and invokes visit for every member falling
// in [vl, vh), ascending, with early exit once the running id passes vh —
// the navigation primitive the inverted-index build uses in place of the
// plain Collection's binary-searched RangeOf.
func (c *CompressedCollection) visitRange(i int, vl, vh graph.Vertex, visit func(graph.Vertex)) {
	data := c.data[c.offsets[i]:c.offsets[i+1]]
	prev := uint32(0)
	pos := 0
	for j := int32(0); j < c.sizes[i]; j++ {
		delta, n := binary.Uvarint(data[pos:])
		pos += n
		cur := uint32(delta)
		if j > 0 {
			cur = prev + 1 + uint32(delta)
		}
		if cur >= vh {
			return
		}
		if cur >= vl {
			visit(cur)
		}
		prev = cur
	}
}

// CountAll accumulates every sample's membership into counter, skipping
// samples marked in covered (the compressed analog of Collection.CountRange
// over the full vertex range). covered uses the same bit-packed Bitset as
// seed selection — the single covered-set representation across stores —
// and may be nil to count everything.
func (c *CompressedCollection) CountAll(counter []int32, covered Bitset) {
	var buf []graph.Vertex
	for i := 0; i < c.Count(); i++ {
		if covered != nil && covered.Get(i) {
			continue
		}
		buf = c.Sample(i, buf)
		for _, u := range buf {
			counter[u]++
		}
	}
}

// Bytes returns the compressed footprint.
func (c *CompressedCollection) Bytes() int64 {
	return int64(len(c.data)) + int64(len(c.offsets))*8 + int64(len(c.sizes))*4
}
