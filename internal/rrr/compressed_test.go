package rrr

import (
	"slices"
	"testing"
	"testing/quick"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

func randomSortedSet(r *rng.Rand, n int, density float64) []graph.Vertex {
	var set []graph.Vertex
	for v := 0; v < n; v++ {
		if r.Float64() < density {
			set = append(set, graph.Vertex(v))
		}
	}
	return set
}

func TestCompressedRoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(rng.NewLCG(seed))
		n := 200
		c := NewCompressedCollection(n)
		var want [][]graph.Vertex
		for i := 0; i < 20; i++ {
			set := randomSortedSet(r, n, r.Float64()*0.5)
			c.Append(set)
			want = append(want, set)
		}
		var buf []graph.Vertex
		for i, w := range want {
			buf = c.Sample(i, buf)
			if len(w) == 0 && len(buf) == 0 {
				continue
			}
			if !slices.Equal(buf, w) {
				return false
			}
		}
		return c.Count() == 20
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedContainsMatchesDecode(t *testing.T) {
	r := rng.New(rng.NewLCG(5))
	n := 150
	c := NewCompressedCollection(n)
	plain := NewCollection(n)
	for i := 0; i < 30; i++ {
		set := randomSortedSet(r, n, 0.2)
		c.Append(set)
		plain.Append(set)
	}
	for i := 0; i < 30; i++ {
		for v := 0; v < n; v++ {
			if c.Contains(i, graph.Vertex(v)) != plain.Contains(i, graph.Vertex(v)) {
				t.Fatalf("Contains(%d, %d) disagrees with plain store", i, v)
			}
		}
	}
}

func TestCompressedCountAllMatchesPlain(t *testing.T) {
	r := rng.New(rng.NewLCG(9))
	n := 100
	c := NewCompressedCollection(n)
	plain := NewCollection(n)
	for i := 0; i < 25; i++ {
		set := randomSortedSet(r, n, 0.3)
		c.Append(set)
		plain.Append(set)
	}
	covered := NewBitset(25)
	covered.Set(3)
	covered.Set(17)
	coveredBool := make([]bool, 25)
	coveredBool[3], coveredBool[17] = true, true
	a := make([]int32, n)
	b := make([]int32, n)
	c.CountAll(a, covered)
	plain.CountRange(b, coveredBool, 0, graph.Vertex(n))
	if !slices.Equal(a, b) {
		t.Fatal("compressed counting disagrees with plain store")
	}
}

func TestCompressedSmallerOnClusteredSets(t *testing.T) {
	// Dense runs of consecutive ids compress to ~1 byte per member vs 4 in
	// the plain arena.
	n := 10000
	c := NewCompressedCollection(n)
	plain := NewCollection(n)
	set := make([]graph.Vertex, 2000)
	for i := range set {
		set[i] = graph.Vertex(3000 + i) // consecutive block
	}
	for i := 0; i < 50; i++ {
		c.Append(set)
		plain.Append(set)
	}
	if c.Bytes() >= plain.Bytes()/2 {
		t.Fatalf("compressed %d B not well below plain %d B", c.Bytes(), plain.Bytes())
	}
	if c.TotalSize() != plain.TotalSize() {
		t.Fatal("cardinality accounting differs")
	}
}

func TestCompressedEmptySample(t *testing.T) {
	c := NewCompressedCollection(10)
	c.Append(nil)
	c.Append([]graph.Vertex{0, 9})
	if got := c.Sample(0, nil); len(got) != 0 {
		t.Fatalf("empty sample decoded to %v", got)
	}
	if !slices.Equal(c.Sample(1, nil), []graph.Vertex{0, 9}) {
		t.Fatal("boundary sample wrong")
	}
	if c.Contains(0, 3) {
		t.Fatal("empty sample claims membership")
	}
}

func TestCompressedLargeIDs(t *testing.T) {
	// Multi-byte varints: ids near the top of the uint32 range.
	n := 1 << 31
	c := NewCompressedCollection(n)
	set := []graph.Vertex{5, 1 << 20, 1 << 28, 1<<31 - 1}
	c.Append(set)
	if !slices.Equal(c.Sample(0, nil), set) {
		t.Fatalf("large ids corrupted: %v", c.Sample(0, nil))
	}
}
