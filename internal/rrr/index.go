package rrr

import (
	"influmax/internal/graph"
	"influmax/internal/par"
)

// Index is the CSR vertex -> sample-ids inverted incidence of a Collection:
// SamplesOf(v) lists, ascending, the ids of every sample containing v. It is
// the lookup structure that turns Algorithm 4's purge step — "remove every
// sample containing the chosen seed" — from a scan over all |R| samples into
// a direct walk of the seed's incidence list, the strategy of HBMax and of
// the sequential NaiveStore baseline, but built on demand from the compact
// one-directional store so sampling keeps its halved memory footprint.
//
// Unlike Hypergraph, which maintains per-vertex slices incrementally during
// Append (one allocation-prone slice per vertex, resident for the whole
// run), Index is two flat arrays built in one parallel pass after sampling
// finishes and dropped when selection ends.
type Index struct {
	offsets []int64 // len = NumVertices()+1
	samples []int32 // concatenated ascending sample ids; len = TotalSize()
}

// BuildIndex constructs the inverted incidence of col with p workers
// (p <= 0 uses the default). The build is the two-pass count / prefix-sum /
// fill scheme over interval-partitioned workers: every worker owns a
// contiguous vertex interval and touches only its own slots in every pass,
// so no atomics are needed — the same ownership discipline Algorithm 4 uses
// for its counter updates.
func BuildIndex(col *Collection, p int) *Index {
	return buildIndex(col.NumVertices(), col.Count(), p,
		func(j int, vl, vh graph.Vertex, visit func(graph.Vertex)) {
			for _, u := range col.RangeOf(j, vl, vh) {
				visit(u)
			}
		})
}

// BuildIndexCoded constructs the inverted incidence of a byte-coded
// store, byte-identical to BuildIndex over an equivalent plain Collection
// for every worker count: the index lives in original-id space regardless
// of the store's labeling, because visitRange filters on original ids and
// each vertex's sample list is kept sorted by the ascending sample loop
// alone. Workers decode each sample instead of binary-searching it, so
// the build costs one extra decode pass per worker — paid once at sketch
// build, or when a snapshot carries samples but no index.
func BuildIndexCoded(col *CodedCollection, p int) *Index {
	return buildIndex(col.NumVertices(), col.Count(), p, col.visitRange)
}

// buildIndex is the store-agnostic core of the two-pass build: rangeOf
// must invoke visit for every member of sample j falling in [vl, vh),
// ascending — the only store access the scheme needs.
func buildIndex(n, count, p int, rangeOf func(j int, vl, vh graph.Vertex, visit func(graph.Vertex))) *Index {
	idx := &Index{offsets: make([]int64, n+1)}
	if n == 0 || count == 0 {
		return idx
	}
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	if p > n {
		p = n
	}

	// Pass 1: per-vertex incidence counts. Each worker navigates to its
	// interval within every sorted sample and increments only the counters
	// it owns (offsets[v+1] doubles as the count slot).
	counts := idx.offsets[1:]
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		for j := 0; j < count; j++ {
			rangeOf(j, graph.Vertex(vl), graph.Vertex(vh), func(u graph.Vertex) {
				counts[u]++
			})
		}
	})

	// Prefix sum, two-level: each worker scans its interval into a local
	// running sum, the p interval totals are exclusive-scanned serially,
	// and each worker rebases its interval — offsets stay worker-owned.
	bases := make([]int64, p+1)
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		var sum int64
		for v := vl; v < vh; v++ {
			sum += counts[v]
			counts[v] = sum
		}
		bases[rank+1] = sum
	})
	for r := 1; r <= p; r++ {
		bases[r] += bases[r-1]
	}
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		for v := vl; v < vh; v++ {
			counts[v] += bases[rank]
		}
	})

	// Pass 2: fill. idx.offsets[v] is the start of v's list and next[v]
	// tracks the cursor; iterating samples in ascending j keeps each
	// vertex's list sorted without a final sort pass. Workers again write
	// only slots owned via their vertex interval.
	idx.samples = make([]int32, idx.offsets[n])
	next := make([]int64, n)
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		for v := vl; v < vh; v++ {
			next[v] = idx.offsets[v]
		}
		for j := 0; j < count; j++ {
			rangeOf(j, graph.Vertex(vl), graph.Vertex(vh), func(u graph.Vertex) {
				idx.samples[next[u]] = int32(j)
				next[u]++
			})
		}
	})
	return idx
}

// PatchIndex derives BuildIndex(next, p) from the index of a previous
// collection when the two differ only at the sample ids listed in changed
// (sorted ascending; prev and next hold the same sample count). A full
// rebuild pays a fixed per-(worker x sample) navigation cost in both of
// its passes, which dominates whenever samples are small — the common case
// for delta maintenance, where a batch repairs a handful of samples out of
// theta. The patch instead copies every untouched vertex's incidence list
// verbatim and merges removal/addition ids only into the lists of vertices
// the changed samples actually mention: O(n + TotalSize) memory traffic
// plus O(p x |changed|) navigation, independent of theta.
//
// The result is byte-identical to a fresh BuildIndex over next at any
// worker count (both keep each list ascending by sample id). An empty
// changed list returns idx itself — indexes are immutable, so sharing is
// safe.
func PatchIndex(idx *Index, prev, next *Collection, changed []int32, p int) *Index {
	if len(changed) == 0 {
		return idx
	}
	n := prev.NumVertices()
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	if p > n {
		p = n
	}
	out := &Index{offsets: make([]int64, n+1)}

	// Pass 1: new counts = old incidence adjusted by the changed samples'
	// membership deltas. Workers own vertex intervals exactly as in
	// buildIndex, but navigate only the changed samples.
	counts := out.offsets[1:]
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		for v := vl; v < vh; v++ {
			counts[v] = idx.offsets[v+1] - idx.offsets[v]
		}
		for _, id := range changed {
			for _, u := range prev.RangeOf(int(id), graph.Vertex(vl), graph.Vertex(vh)) {
				counts[u]--
			}
			for _, u := range next.RangeOf(int(id), graph.Vertex(vl), graph.Vertex(vh)) {
				counts[u]++
			}
		}
	})

	// Prefix sum, two-level (same scheme as buildIndex).
	bases := make([]int64, p+1)
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		var sum int64
		for v := vl; v < vh; v++ {
			sum += counts[v]
			counts[v] = sum
		}
		bases[rank+1] = sum
	})
	for r := 1; r <= p; r++ {
		bases[r] += bases[r-1]
	}
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		for v := vl; v < vh; v++ {
			counts[v] += bases[rank]
		}
	})

	// Pass 2: fill. Each worker inverts the changed samples over its
	// interval into per-vertex removal (old membership) and addition (new
	// membership) lists — ascending by id because changed is — then per
	// vertex either copies the old list straight through or merges:
	// (old \ removals) interleaved with additions. An id on both sides is
	// a regenerated sample that still contains v; it leaves the merge at
	// its original sorted position.
	out.samples = make([]int32, out.offsets[n])
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		rem := make([][]int32, vh-vl)
		add := make([][]int32, vh-vl)
		for _, id := range changed {
			for _, u := range prev.RangeOf(int(id), graph.Vertex(vl), graph.Vertex(vh)) {
				rem[int(u)-vl] = append(rem[int(u)-vl], id)
			}
			for _, u := range next.RangeOf(int(id), graph.Vertex(vl), graph.Vertex(vh)) {
				add[int(u)-vl] = append(add[int(u)-vl], id)
			}
		}
		var kept []int32
		for v := vl; v < vh; v++ {
			dst := out.samples[out.offsets[v]:out.offsets[v+1]]
			src := idx.samples[idx.offsets[v]:idx.offsets[v+1]]
			rv, av := rem[v-vl], add[v-vl]
			if len(rv) == 0 && len(av) == 0 {
				copy(dst, src)
				continue
			}
			kept = kept[:0]
			ri := 0
			for _, id := range src {
				if ri < len(rv) && rv[ri] == id {
					ri++
					continue
				}
				kept = append(kept, id)
			}
			ki, ai, o := 0, 0, 0
			for ki < len(kept) && ai < len(av) {
				if kept[ki] < av[ai] {
					dst[o] = kept[ki]
					ki++
				} else {
					dst[o] = av[ai]
					ai++
				}
				o++
			}
			o += copy(dst[o:], kept[ki:])
			copy(dst[o:], av[ai:])
		}
	})
	return out
}

// NumVertices returns the vertex-universe size the index was built over.
func (x *Index) NumVertices() int { return len(x.offsets) - 1 }

// SamplesOf returns the ascending ids of the samples containing v
// (aliasing internal storage; do not modify).
func (x *Index) SamplesOf(v graph.Vertex) []int32 {
	return x.samples[x.offsets[v]:x.offsets[v+1]]
}

// Degree returns the incidence count of v without materializing the slice.
func (x *Index) Degree(v graph.Vertex) int64 {
	return x.offsets[v+1] - x.offsets[v]
}

// Bytes returns the index footprint — the transient cost of indexed seed
// selection, reported as rrr/index-bytes alongside the store's Bytes.
func (x *Index) Bytes() int64 {
	return int64(len(x.samples))*4 + int64(len(x.offsets))*8
}

// Bitset is a bit-packed boolean vector over sample ids, replacing the
// byte-per-sample covered slices of seed selection (8x smaller, so the
// covered set of a multi-million-sample run stays cache-resident).
type Bitset []uint64

// NewBitset returns an all-false bitset of n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }
