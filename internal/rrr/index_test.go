package rrr

import (
	"slices"
	"testing"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

// randomCollection builds a Collection (and the same sets) of count random
// sorted samples over n vertices.
func randomCollection(seed uint64, n, count int, density float64) (*Collection, [][]graph.Vertex) {
	r := rng.New(rng.NewLCG(seed))
	col := NewCollection(n)
	sets := make([][]graph.Vertex, count)
	for j := range sets {
		for v := 0; v < n; v++ {
			if r.Float64() < density {
				sets[j] = append(sets[j], graph.Vertex(v))
			}
		}
		col.Append(sets[j])
	}
	return col, sets
}

// TestIndexMatchesHypergraph checks the parallel build against the
// incrementally maintained incidence of Hypergraph, vertex by vertex.
func TestIndexMatchesHypergraph(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		col, sets := randomCollection(uint64(p)*7+1, 40, 120, 0.12)
		hyper := NewHypergraph(40)
		for _, s := range sets {
			hyper.Append(s)
		}
		idx := BuildIndex(col, p)
		for v := 0; v < 40; v++ {
			want := hyper.SamplesOf(graph.Vertex(v))
			got := idx.SamplesOf(graph.Vertex(v))
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !slices.Equal(got, want) {
				t.Fatalf("p=%d v=%d: index %v != hypergraph %v", p, v, got, want)
			}
			if idx.Degree(graph.Vertex(v)) != int64(len(want)) {
				t.Fatalf("p=%d v=%d: degree %d != %d", p, v, idx.Degree(graph.Vertex(v)), len(want))
			}
		}
	}
}

// TestIndexDeterministicAcrossWorkers pins the exact arrays: the build must
// be a pure function of the collection, independent of the worker count.
func TestIndexDeterministicAcrossWorkers(t *testing.T) {
	col, _ := randomCollection(3, 64, 300, 0.08)
	ref := BuildIndex(col, 1)
	for _, p := range []int{2, 4, 7, 16, 100} {
		idx := BuildIndex(col, p)
		if !slices.Equal(idx.offsets, ref.offsets) || !slices.Equal(idx.samples, ref.samples) {
			t.Fatalf("p=%d: index differs from p=1 build", p)
		}
	}
}

// TestIndexSortedPerVertex verifies each incidence list ascends (the
// property the ascending-j fill pass guarantees without a sort).
func TestIndexSortedPerVertex(t *testing.T) {
	col, _ := randomCollection(9, 30, 200, 0.2)
	idx := BuildIndex(col, 4)
	for v := 0; v < 30; v++ {
		inc := idx.SamplesOf(graph.Vertex(v))
		if !slices.IsSorted(inc) {
			t.Fatalf("v=%d incidence not ascending: %v", v, inc)
		}
	}
}

// TestIndexEdgeCases covers the par.Interval boundary shapes: more workers
// than vertices, a single vertex, an empty collection, and a zero-vertex
// universe.
func TestIndexEdgeCases(t *testing.T) {
	// n < p: 3 vertices, 16 workers.
	col := NewCollection(3)
	col.Append([]graph.Vertex{0, 2})
	col.Append([]graph.Vertex{1})
	col.Append([]graph.Vertex{0, 1, 2})
	idx := BuildIndex(col, 16)
	if !slices.Equal(idx.SamplesOf(0), []int32{0, 2}) ||
		!slices.Equal(idx.SamplesOf(1), []int32{1, 2}) ||
		!slices.Equal(idx.SamplesOf(2), []int32{0, 2}) {
		t.Fatalf("n<p incidence wrong: %v %v %v",
			idx.SamplesOf(0), idx.SamplesOf(1), idx.SamplesOf(2))
	}

	// Empty collection over a nonzero universe.
	empty := BuildIndex(NewCollection(5), 4)
	if empty.NumVertices() != 5 || len(empty.SamplesOf(4)) != 0 {
		t.Fatal("empty collection index not empty")
	}

	// n == 0 universe.
	zero := BuildIndex(NewCollection(0), 4)
	if zero.NumVertices() != 0 || zero.Bytes() <= 0 {
		t.Fatalf("n=0 index malformed: n=%d bytes=%d", zero.NumVertices(), zero.Bytes())
	}

	// Single vertex, many workers.
	one := NewCollection(1)
	one.Append([]graph.Vertex{0})
	oneIdx := BuildIndex(one, 8)
	if !slices.Equal(oneIdx.SamplesOf(0), []int32{0}) {
		t.Fatalf("single-vertex incidence: %v", oneIdx.SamplesOf(0))
	}
}

// mutateSamples returns a copy of col with the samples in changed replaced
// by fresh random sorted sets (possibly empty, possibly overlapping the
// originals — the patch must handle a regenerated sample keeping some
// members).
func mutateSamples(col *Collection, changed []int32, seed uint64, density float64) *Collection {
	r := rng.New(rng.NewLCG(seed))
	out := NewCollection(col.NumVertices())
	ci := 0
	for id := 0; id < col.Count(); id++ {
		if ci < len(changed) && int(changed[ci]) == id {
			ci++
			var set []graph.Vertex
			for v := 0; v < col.NumVertices(); v++ {
				if r.Float64() < density {
					set = append(set, graph.Vertex(v))
				}
			}
			out.Append(set)
			continue
		}
		out.Append(col.Sample(id))
	}
	return out
}

// TestPatchIndexMatchesBuild pins the patch against the ground truth: for
// random collections, random changed subsets and every worker count, the
// patched index must be byte-identical to a fresh BuildIndex over the
// mutated collection.
func TestPatchIndexMatchesBuild(t *testing.T) {
	for _, tc := range []struct {
		seed     uint64
		n, count int
		nChanged int
	}{
		{1, 40, 120, 1},
		{2, 40, 120, 7},
		{3, 64, 300, 30},
		{4, 10, 50, 50}, // every sample changed
		{5, 3, 20, 4},   // n < p for the larger worker counts
	} {
		col, _ := randomCollection(tc.seed, tc.n, tc.count, 0.12)
		r := rng.New(rng.NewLCG(tc.seed * 77))
		changed := make([]int32, 0, tc.nChanged)
		for _, id := range r.Perm(tc.count)[:tc.nChanged] {
			changed = append(changed, int32(id))
		}
		slices.Sort(changed)
		next := mutateSamples(col, changed, tc.seed*13+5, 0.15)
		for _, p := range []int{1, 2, 3, 8, 64} {
			idx := BuildIndex(col, p)
			want := BuildIndex(next, p)
			got := PatchIndex(idx, col, next, changed, p)
			if !slices.Equal(got.offsets, want.offsets) || !slices.Equal(got.samples, want.samples) {
				t.Fatalf("seed=%d p=%d changed=%v: patched index differs from rebuild",
					tc.seed, p, changed)
			}
		}
	}
}

// TestPatchIndexNoChanges verifies the empty-changed fast path shares the
// immutable index instead of copying it.
func TestPatchIndexNoChanges(t *testing.T) {
	col, _ := randomCollection(21, 30, 80, 0.1)
	idx := BuildIndex(col, 4)
	if got := PatchIndex(idx, col, col, nil, 4); got != idx {
		t.Fatal("PatchIndex with no changed samples must return the index unchanged")
	}
}

// TestIndexBytes checks the accounting: 4 bytes per association plus the
// offsets array, i.e. half a Hypergraph's incidence overhead structure-for-
// structure (no per-vertex slice headers).
func TestIndexBytes(t *testing.T) {
	col, _ := randomCollection(11, 20, 50, 0.15)
	idx := BuildIndex(col, 2)
	want := col.TotalSize()*4 + int64(21)*8
	if idx.Bytes() != want {
		t.Fatalf("Bytes() = %d, want %d", idx.Bytes(), want)
	}
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	if len(b) != 3 {
		t.Fatalf("130 bits packed into %d words, want 3", len(b))
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	// Neighbors unaffected.
	for _, i := range []int{2, 62, 66, 127} {
		if b.Get(i) {
			t.Fatalf("bit %d set spuriously", i)
		}
	}
	if len(NewBitset(0)) != 0 {
		t.Fatal("0-bit bitset not empty")
	}
}

// TestBuildIndexCodedMatchesPlain pins the store-agnostic build core:
// indexing a coded store — under either labeling — yields exactly the
// arrays of indexing the equivalent plain Collection, for every worker
// count. The index lives in original-id space, so a frequency relabeling
// must not leak into it.
func TestBuildIndexCodedMatchesPlain(t *testing.T) {
	col, _ := randomCollection(11, 50, 160, 0.15)
	for _, relab := range []*Relabeling{nil, NewRelabeling(IncidenceOf(col, 3))} {
		coded := FromCollection(col, relab)
		for _, p := range []int{1, 2, 3, 8, 64} {
			want := BuildIndex(col, p)
			got := BuildIndexCoded(coded, p)
			if !slices.Equal(got.offsets, want.offsets) || !slices.Equal(got.samples, want.samples) {
				t.Fatalf("relabeled=%v p=%d: coded index differs from plain build", relab != nil, p)
			}
		}
	}
}
