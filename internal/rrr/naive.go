package rrr

import (
	"sort"

	"influmax/internal/graph"
)

// NaiveStore reproduces the storage strategy of the Tang et al. reference
// implementation, the sequential baseline "IMM" of Table 2: every sample is
// a separately allocated vertex list, and the vertex->sample incidence is
// materialized in full, so every sample/vertex association is stored twice
// and the layout is pointer-heavy rather than arena-based. The Table 2
// comparison (IMM vs IMMopt) is exactly NaiveStore vs Collection.
type NaiveStore struct {
	n         int
	samples   [][]graph.Vertex
	incidence [][]int32
}

// NewNaiveStore returns an empty store over n vertices.
func NewNaiveStore(n int) *NaiveStore {
	return &NaiveStore{n: n, incidence: make([][]int32, n)}
}

// NumVertices returns the vertex-universe size.
func (s *NaiveStore) NumVertices() int { return s.n }

// Count returns the number of stored samples.
func (s *NaiveStore) Count() int { return len(s.samples) }

// Append copies one sorted sample into the store and updates the inverted
// incidence.
func (s *NaiveStore) Append(set []graph.Vertex) {
	idx := int32(len(s.samples))
	own := append([]graph.Vertex(nil), set...)
	s.samples = append(s.samples, own)
	for _, v := range own {
		s.incidence[v] = append(s.incidence[v], idx)
	}
}

// Sample returns the i-th sample.
func (s *NaiveStore) Sample(i int) []graph.Vertex { return s.samples[i] }

// SamplesOf returns the indices of samples containing v.
func (s *NaiveStore) SamplesOf(v graph.Vertex) []int32 { return s.incidence[v] }

// Contains reports membership of v in sample i.
func (s *NaiveStore) Contains(i int, v graph.Vertex) bool {
	sm := s.samples[i]
	j := sort.Search(len(sm), func(k int) bool { return sm[k] >= v })
	return j < len(sm) && sm[j] == v
}

// TotalSize returns the summed cardinality of all samples.
func (s *NaiveStore) TotalSize() int64 {
	var t int64
	for _, sm := range s.samples {
		t += int64(len(sm))
	}
	return t
}

// Bytes returns the memory footprint: both directions of the association
// plus per-sample slice headers — the cost IMMopt eliminates.
func (s *NaiveStore) Bytes() int64 {
	b := int64(0)
	for _, sm := range s.samples {
		b += int64(cap(sm))*4 + 24
	}
	for _, inc := range s.incidence {
		b += int64(cap(inc))*4 + 24
	}
	return b
}
