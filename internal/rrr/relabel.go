package rrr

import (
	"fmt"

	"influmax/internal/graph"
	"influmax/internal/par"
)

// Relabeling is a bijection between original vertex ids and code ids,
// ordered by incidence frequency: the vertex appearing in the most samples
// gets code 0, the next code 1, and so on (ties broken by ascending
// original id, so the table is a pure function of the frequency vector).
// Re-expressing each sorted sample in code space concentrates the hot
// vertices — which dominate sample membership on clustered graphs — into
// the small ids, so the gaps of a delta coding shrink and most varints fit
// one byte. This is the HBMax observation: RRR memory, not CPU, binds at
// scale, and frequency ordering is what unlocks byte-level coding.
//
// The zero value is not useful; construct with NewRelabeling or
// RelabelingFromTable. A nil *Relabeling everywhere means the identity
// labeling (code space == original id space).
type Relabeling struct {
	code []uint32 // original id -> code
	orig []uint32 // code -> original id
}

// NewRelabeling builds the frequency-ordered relabeling for a universe of
// len(freq) vertices, where freq[v] counts the samples containing v.
// Ordering is (frequency descending, original id ascending).
func NewRelabeling(freq []int32) *Relabeling {
	n := len(freq)
	r := &Relabeling{code: make([]uint32, n), orig: make([]uint32, n)}
	for v := range r.orig {
		r.orig[v] = uint32(v)
	}
	// Counting sort by frequency bucket keeps construction O(n + maxFreq)
	// and, because vertices are scanned in ascending id within each bucket,
	// realizes the (freq desc, id asc) tie-break without a comparison sort.
	maxFreq := int32(0)
	for _, f := range freq {
		if f > maxFreq {
			maxFreq = f
		}
	}
	buckets := make([]int32, int(maxFreq)+2)
	for _, f := range freq {
		buckets[maxFreq-f]++
	}
	for b := 1; b < len(buckets); b++ {
		buckets[b] += buckets[b-1]
	}
	for b := len(buckets) - 1; b > 0; b-- {
		buckets[b] = buckets[b-1]
	}
	buckets[0] = 0
	for v := 0; v < n; v++ {
		b := maxFreq - freq[v]
		r.orig[buckets[b]] = uint32(v)
		buckets[b]++
	}
	for c, v := range r.orig {
		r.code[v] = uint32(c)
	}
	return r
}

// RelabelingFromTable reconstructs a relabeling from its code -> original
// table (the snapshot form), validating that the table is a permutation of
// [0, len(table)).
func RelabelingFromTable(table []uint32) (*Relabeling, error) {
	n := len(table)
	r := &Relabeling{code: make([]uint32, n), orig: table}
	seen := make([]bool, n)
	for c, v := range table {
		if int(v) >= n {
			return nil, fmt.Errorf("rrr: relabel table entry %d = %d out of range [0, %d)", c, v, n)
		}
		if seen[v] {
			return nil, fmt.Errorf("rrr: relabel table maps vertex %d twice", v)
		}
		seen[v] = true
		r.code[v] = uint32(c)
	}
	return r, nil
}

// Len returns the size of the labeled universe.
func (r *Relabeling) Len() int { return len(r.orig) }

// Code maps an original vertex id to its code.
func (r *Relabeling) Code(v graph.Vertex) uint32 { return r.code[v] }

// Orig maps a code back to the original vertex id.
func (r *Relabeling) Orig(c uint32) graph.Vertex { return graph.Vertex(r.orig[c]) }

// Table returns the code -> original column, the form the snapshot codec
// persists (aliasing internal storage; do not modify).
func (r *Relabeling) Table() []uint32 { return r.orig }

// Bytes returns the resident footprint of both direction tables; a coded
// store's Bytes accounting charges itself for the table it depends on.
func (r *Relabeling) Bytes() int64 {
	if r == nil {
		return 0
	}
	return int64(len(r.code)+len(r.orig)) * 4
}

// IncidenceOf counts, for every vertex, the number of samples of col
// containing it, with p workers over interval-owned counters (the same
// no-atomics discipline as BuildIndex pass 1). This frequency vector is
// the input to NewRelabeling.
func IncidenceOf(col *Collection, p int) []int32 {
	n := col.NumVertices()
	freq := make([]int32, n)
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	if p > n {
		p = n
	}
	if n == 0 {
		return freq
	}
	par.Run(p, func(rank int) {
		vl, vh := par.Interval(n, p, rank)
		col.CountRange(freq, nil, graph.Vertex(vl), graph.Vertex(vh))
	})
	return freq
}
