// Package rrr provides the storage layer for collections of random reverse
// reachable (RRR) sets — the set R of Algorithm 1.
//
// Two representations are implemented, mirroring the paper's Table 2
// comparison:
//
//   - Collection is the paper's compact one-directional layout (Section
//     3.1): each sample is stored once, as a vertex list sorted by id,
//     concatenated into a single flat arena. Sorted order gives the two
//     properties Algorithm 4 exploits: a thread's vertex interval
//     [vl, vh) occupies contiguous memory within every sample (counting
//     proceeds in cache order) and its bounds are found by binary search.
//
//   - Hypergraph additionally stores the inverted vertex-to-sample
//     incidence, as Tang et al.'s reference implementation does. It makes
//     seed selection cheaper but roughly doubles the memory footprint —
//     the trade-off quantified in Table 2.
package rrr

import (
	"slices"
	"sort"

	"influmax/internal/graph"
)

// Collection stores RRR sets in the compact one-directional layout.
type Collection struct {
	n       int
	offsets []int64        // len = Count()+1
	verts   []graph.Vertex // concatenated sorted vertex lists
}

// NewCollection returns an empty collection over a graph with n vertices.
func NewCollection(n int) *Collection {
	return &Collection{n: n, offsets: []int64{0}}
}

// NumVertices returns the vertex-universe size.
func (c *Collection) NumVertices() int { return c.n }

// Count returns the number of stored samples.
func (c *Collection) Count() int { return len(c.offsets) - 1 }

// TotalSize returns the summed cardinality of all samples.
func (c *Collection) TotalSize() int64 { return int64(len(c.verts)) }

// Append adds one sample. The vertex list must be sorted ascending and
// duplicate-free (as produced by diffuse.Sampler.GenerateRR); this is the
// caller's contract and is checked in debug builds via CheckInvariants.
func (c *Collection) Append(set []graph.Vertex) {
	c.verts = append(c.verts, set...)
	c.offsets = append(c.offsets, int64(len(c.verts)))
}

// AppendArena bulk-appends samples stored in another flat arena (used to
// merge per-worker sampling output in deterministic order).
func (c *Collection) AppendArena(verts []graph.Vertex, offsets []int64) {
	base := int64(len(c.verts))
	c.verts = append(c.verts, verts...)
	for i := 1; i < len(offsets); i++ {
		c.offsets = append(c.offsets, base+offsets[i])
	}
}

// Reserve grows the backing arrays so that at least samples more samples
// totalling entries more vertex entries can be appended without
// reallocation (batch merges size their append target exactly).
func (c *Collection) Reserve(samples int, entries int64) {
	c.offsets = slices.Grow(c.offsets, samples)
	c.verts = slices.Grow(c.verts, int(entries))
}

// Sample returns the i-th sample's sorted vertex list (aliasing internal
// storage; do not modify).
func (c *Collection) Sample(i int) []graph.Vertex {
	return c.verts[c.offsets[i]:c.offsets[i+1]]
}

// Contains reports whether vertex v is a member of sample i (binary
// search).
func (c *Collection) Contains(i int, v graph.Vertex) bool {
	s := c.Sample(i)
	j := sort.Search(len(s), func(k int) bool { return s[k] >= v })
	return j < len(s) && s[j] == v
}

// RangeOf returns the sub-slice of sample i whose vertices fall in
// [vl, vh), located by binary search — the navigation step that lets each
// rank avoid traversing samples outside its vertex interval.
func (c *Collection) RangeOf(i int, vl, vh graph.Vertex) []graph.Vertex {
	s := c.Sample(i)
	lo := sort.Search(len(s), func(k int) bool { return s[k] >= vl })
	hi := sort.Search(len(s), func(k int) bool { return s[k] >= vh })
	return s[lo:hi]
}

// Truncate drops all samples beyond the first count (used when the
// estimation phase produced more samples than the final theta requires).
func (c *Collection) Truncate(count int) {
	if count >= c.Count() {
		return
	}
	c.offsets = c.offsets[:count+1]
	c.verts = c.verts[:c.offsets[count]]
}

// Bytes returns the memory footprint of the stored samples, matching the
// accounting used for Table 2's memory columns.
func (c *Collection) Bytes() int64 {
	return int64(len(c.verts))*4 + int64(len(c.offsets))*8
}

// CheckInvariants verifies that every sample is sorted and duplicate-free
// and that offsets are monotone. It is used by tests and returns the index
// of the first offending sample, or -1.
func (c *Collection) CheckInvariants() int {
	for i := 0; i < c.Count(); i++ {
		if c.offsets[i] > c.offsets[i+1] {
			return i
		}
		s := c.Sample(i)
		for j := 1; j < len(s); j++ {
			if s[j] <= s[j-1] {
				return i
			}
		}
	}
	return -1
}

// CountRange accumulates, into counter, the number of samples each vertex
// in [vl, vh) belongs to, skipping samples marked covered. This is the
// first phase of Algorithm 4 executed by the rank owning [vl, vh).
func (c *Collection) CountRange(counter []int32, covered []bool, vl, vh graph.Vertex) {
	for i := 0; i < c.Count(); i++ {
		if covered != nil && covered[i] {
			continue
		}
		for _, u := range c.RangeOf(i, vl, vh) {
			counter[u]++
		}
	}
}

// Hypergraph is the bidirectional representation used by the Tang et al.
// reference implementation: alongside the sample->vertex lists it keeps,
// for every vertex, the list of samples containing it. Each association is
// stored twice ("Thus, each association between a sample and a vertex is
// stored twice" — Section 3.1).
type Hypergraph struct {
	Collection
	incidence [][]int32 // vertex -> indices of samples containing it
}

// NewHypergraph returns an empty hypergraph over n vertices.
func NewHypergraph(n int) *Hypergraph {
	return &Hypergraph{
		Collection: Collection{n: n, offsets: []int64{0}},
		incidence:  make([][]int32, n),
	}
}

// Append adds one sorted sample and updates the inverted incidence.
func (h *Hypergraph) Append(set []graph.Vertex) {
	idx := int32(h.Count())
	h.Collection.Append(set)
	for _, v := range set {
		h.incidence[v] = append(h.incidence[v], idx)
	}
}

// SamplesOf returns the indices of the samples containing v.
func (h *Hypergraph) SamplesOf(v graph.Vertex) []int32 { return h.incidence[v] }

// Bytes returns the memory footprint including the inverted incidence —
// the quantity that makes the baseline's footprint roughly twice the
// compact layout's in Table 2.
func (h *Hypergraph) Bytes() int64 {
	b := h.Collection.Bytes()
	for _, inc := range h.incidence {
		b += int64(len(inc)) * 4
	}
	b += int64(len(h.incidence)) * 24 // slice headers
	return b
}
