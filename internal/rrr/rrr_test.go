package rrr

import (
	"slices"
	"testing"
	"testing/quick"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

func TestCollectionAppendAndSample(t *testing.T) {
	c := NewCollection(10)
	c.Append([]graph.Vertex{1, 3, 5})
	c.Append([]graph.Vertex{0})
	c.Append(nil)
	c.Append([]graph.Vertex{2, 9})
	if c.Count() != 4 {
		t.Fatalf("Count = %d, want 4", c.Count())
	}
	if c.TotalSize() != 6 {
		t.Fatalf("TotalSize = %d, want 6", c.TotalSize())
	}
	if !slices.Equal(c.Sample(0), []graph.Vertex{1, 3, 5}) {
		t.Fatalf("Sample(0) = %v", c.Sample(0))
	}
	if len(c.Sample(2)) != 0 {
		t.Fatalf("Sample(2) = %v, want empty", c.Sample(2))
	}
	if got := c.CheckInvariants(); got != -1 {
		t.Fatalf("CheckInvariants = %d", got)
	}
}

func TestCollectionContains(t *testing.T) {
	c := NewCollection(100)
	c.Append([]graph.Vertex{2, 4, 8, 16, 32, 64})
	for _, v := range []graph.Vertex{2, 16, 64} {
		if !c.Contains(0, v) {
			t.Errorf("Contains(0, %d) = false", v)
		}
	}
	for _, v := range []graph.Vertex{0, 3, 63, 65, 99} {
		if c.Contains(0, v) {
			t.Errorf("Contains(0, %d) = true", v)
		}
	}
}

func TestRangeOf(t *testing.T) {
	c := NewCollection(100)
	c.Append([]graph.Vertex{5, 10, 15, 20, 25})
	cases := []struct {
		vl, vh graph.Vertex
		want   []graph.Vertex
	}{
		{0, 100, []graph.Vertex{5, 10, 15, 20, 25}},
		{10, 21, []graph.Vertex{10, 15, 20}},
		{11, 15, nil},
		{25, 26, []graph.Vertex{25}},
		{26, 100, nil},
		{0, 5, nil},
	}
	for _, tc := range cases {
		got := c.RangeOf(0, tc.vl, tc.vh)
		if !slices.Equal(got, tc.want) {
			t.Errorf("RangeOf(0, %d, %d) = %v, want %v", tc.vl, tc.vh, got, tc.want)
		}
	}
}

func TestRangePartitionCoversSample(t *testing.T) {
	// Splitting the vertex space into p intervals must partition every
	// sample without overlap or loss.
	check := func(seed uint64, pRaw uint8) bool {
		p := int(pRaw%7) + 1
		r := rng.New(rng.NewLCG(seed))
		n := 50
		var set []graph.Vertex
		for v := 0; v < n; v++ {
			if r.Float64() < 0.3 {
				set = append(set, graph.Vertex(v))
			}
		}
		c := NewCollection(n)
		c.Append(set)
		var rebuilt []graph.Vertex
		for rank := 0; rank < p; rank++ {
			vl := graph.Vertex(n * rank / p)
			vh := graph.Vertex(n * (rank + 1) / p)
			rebuilt = append(rebuilt, c.RangeOf(0, vl, vh)...)
		}
		return slices.Equal(rebuilt, set)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendArena(t *testing.T) {
	c := NewCollection(10)
	c.Append([]graph.Vertex{1, 2})
	// Worker arena with two samples: {3,4} and {5}.
	verts := []graph.Vertex{3, 4, 5}
	offsets := []int64{0, 2, 3}
	c.AppendArena(verts, offsets)
	if c.Count() != 3 {
		t.Fatalf("Count = %d, want 3", c.Count())
	}
	if !slices.Equal(c.Sample(1), []graph.Vertex{3, 4}) || !slices.Equal(c.Sample(2), []graph.Vertex{5}) {
		t.Fatalf("merged samples wrong: %v %v", c.Sample(1), c.Sample(2))
	}
	if c.CheckInvariants() != -1 {
		t.Fatal("invariants broken after arena append")
	}
}

func TestAppendArenaEmpty(t *testing.T) {
	c := NewCollection(5)
	c.AppendArena(nil, []int64{0})
	if c.Count() != 0 {
		t.Fatal("empty arena added samples")
	}
}

func TestTruncate(t *testing.T) {
	c := NewCollection(10)
	for i := 0; i < 5; i++ {
		c.Append([]graph.Vertex{graph.Vertex(i)})
	}
	c.Truncate(3)
	if c.Count() != 3 || c.TotalSize() != 3 {
		t.Fatalf("after truncate: count %d size %d", c.Count(), c.TotalSize())
	}
	c.Truncate(10) // no-op
	if c.Count() != 3 {
		t.Fatal("truncate beyond count changed collection")
	}
}

func TestCheckInvariantsDetectsUnsorted(t *testing.T) {
	c := NewCollection(10)
	c.Append([]graph.Vertex{3, 1}) // violates contract
	if c.CheckInvariants() != 0 {
		t.Fatal("unsorted sample not detected")
	}
	c2 := NewCollection(10)
	c2.Append([]graph.Vertex{1, 1}) // duplicate
	if c2.CheckInvariants() != 0 {
		t.Fatal("duplicate not detected")
	}
}

func TestCountRange(t *testing.T) {
	c := NewCollection(6)
	c.Append([]graph.Vertex{0, 2, 4})
	c.Append([]graph.Vertex{2, 3})
	c.Append([]graph.Vertex{4, 5})
	counter := make([]int32, 6)
	c.CountRange(counter, nil, 0, 6)
	want := []int32{1, 0, 2, 1, 2, 1}
	if !slices.Equal(counter, want) {
		t.Fatalf("counter = %v, want %v", counter, want)
	}
	// Restrict to [2,4): only vertices 2 and 3 counted.
	counter2 := make([]int32, 6)
	c.CountRange(counter2, nil, 2, 4)
	want2 := []int32{0, 0, 2, 1, 0, 0}
	if !slices.Equal(counter2, want2) {
		t.Fatalf("counter2 = %v, want %v", counter2, want2)
	}
}

func TestCountRangeSkipsCovered(t *testing.T) {
	c := NewCollection(4)
	c.Append([]graph.Vertex{0, 1})
	c.Append([]graph.Vertex{1, 2})
	counter := make([]int32, 4)
	c.CountRange(counter, []bool{true, false}, 0, 4)
	want := []int32{0, 1, 1, 0}
	if !slices.Equal(counter, want) {
		t.Fatalf("counter = %v, want %v", counter, want)
	}
}

func TestCollectionBytesGrow(t *testing.T) {
	c := NewCollection(10)
	b0 := c.Bytes()
	c.Append([]graph.Vertex{1, 2, 3})
	if c.Bytes() <= b0 {
		t.Fatal("Bytes did not grow after append")
	}
}

func TestHypergraphIncidence(t *testing.T) {
	h := NewHypergraph(5)
	h.Append([]graph.Vertex{0, 2})
	h.Append([]graph.Vertex{2, 3})
	h.Append([]graph.Vertex{0})
	if !slices.Equal(h.SamplesOf(0), []int32{0, 2}) {
		t.Fatalf("SamplesOf(0) = %v", h.SamplesOf(0))
	}
	if !slices.Equal(h.SamplesOf(2), []int32{0, 1}) {
		t.Fatalf("SamplesOf(2) = %v", h.SamplesOf(2))
	}
	if len(h.SamplesOf(4)) != 0 {
		t.Fatal("SamplesOf(4) should be empty")
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHypergraphBytesExceedCompact(t *testing.T) {
	// The whole point of Table 2: the bidirectional store costs more.
	c := NewCollection(100)
	h := NewHypergraph(100)
	set := make([]graph.Vertex, 50)
	for i := range set {
		set[i] = graph.Vertex(i * 2)
	}
	for i := 0; i < 20; i++ {
		c.Append(set)
		h.Append(set)
	}
	if h.Bytes() <= c.Bytes() {
		t.Fatalf("hypergraph bytes (%d) not larger than compact (%d)", h.Bytes(), c.Bytes())
	}
}

func TestHypergraphIncidenceMatchesMembership(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(rng.NewLCG(seed))
		n := 30
		h := NewHypergraph(n)
		for s := 0; s < 10; s++ {
			var set []graph.Vertex
			for v := 0; v < n; v++ {
				if r.Float64() < 0.25 {
					set = append(set, graph.Vertex(v))
				}
			}
			h.Append(set)
		}
		for v := 0; v < n; v++ {
			fromIncidence := len(h.SamplesOf(graph.Vertex(v)))
			direct := 0
			for s := 0; s < h.Count(); s++ {
				if h.Contains(s, graph.Vertex(v)) {
					direct++
				}
			}
			if fromIncidence != direct {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReserveRetainsContentAndPreventsGrowth(t *testing.T) {
	c := NewCollection(10)
	c.Append([]graph.Vertex{1, 3})
	c.Reserve(100, 500)
	if c.Count() != 1 || len(c.Sample(0)) != 2 {
		t.Fatalf("Reserve disturbed content: count %d", c.Count())
	}
	// Appends within the reservation must not move the backing arrays.
	v0 := &c.verts[:cap(c.verts)][0]
	o0 := &c.offsets[:cap(c.offsets)][0]
	for i := 0; i < 100; i++ {
		c.Append([]graph.Vertex{graph.Vertex(i % 10), graph.Vertex(i%10 + 1)})
	}
	if &c.verts[0] != v0 || &c.offsets[0] != o0 {
		t.Fatal("append within reservation reallocated backing array")
	}
	if got := c.CheckInvariants(); got != -1 {
		t.Fatalf("invariants broken at sample %d", got)
	}
}
