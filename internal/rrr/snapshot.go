package rrr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"influmax/internal/graph"
)

// Snapshot format: the persistent form of a sampled sketch, so a serving
// process can warm-start from disk instead of re-running the minutes-long
// sampling phase. One snapshot holds a CodedCollection (with its optional
// relabel table), its optional CSR inverted-incidence Index, and the
// SnapshotMeta identifying the configuration the sketch was sampled for.
// Layout (all integers little-endian; normative spec in DESIGN.md §13):
//
//	magic   [8]byte  "IMXSNAP\x01"
//	version uint32   (currently 3)
//	meta    graphDigest u64 | model u64 | epsilonBits u64 |
//	        kMax u64 | seed u64 | theta u64
//	store   n u64 | count u64 | total u64 | dataLen u64 |
//	        blockOffs ceil(count/64)*i64 | data[dataLen]
//	relab   present u64 (0|1); if 1: table n*u32 (code -> original id)
//	index   present u64 (0|1); if 1:
//	        offsets (n+1)*i64 | samplesLen u64 | samples samplesLen*i32
//	deltas  (version >= 3) batches u64 | per batch:
//	        ops u64 | per op: kind u8 | src u32 | dst u32 | wBits u32
//	        then sectionCRC u32 (CRC-32C of the section bytes above)
//	crc     uint32  (CRC-32C of every preceding byte, magic included)
//
// The delta section is the replay log of a dynamic sketch (DESIGN.md §15):
// graphDigest identifies the BASE graph, and a warm restart replays the
// logged batches over it to reconstruct the graph the persisted samples
// were maintained against. Batch boundaries are preserved because
// per-batch weight re-derivation (weighted cascade, LT normalization) is
// not replay-once-safe. The section carries its own checksum — guarding
// the pointer-dense log independently — in addition to the whole-file CRC.
// Version-2 snapshots (no section) load with a nil log.
//
// The reader validates every header field before trusting it, mirroring
// the TCP transport's frame discipline (internal/mpi/frame.go): a size
// claim past the configured bound is a SnapshotError, buffers grow in
// bounded chunks as bytes actually arrive (an adversarial header cannot
// force a max-size allocation up front), structural invariants (monotone
// offsets, section lengths that agree) are checked after decode, and the
// trailing checksum must match. Encoding is deterministic: save -> load ->
// save reproduces the file byte for byte.

// snapshotMagic identifies the file type and format generation.
var snapshotMagic = [8]byte{'I', 'M', 'X', 'S', 'N', 'A', 'P', 1}

// SnapshotVersion is the current snapshot wire-format version. Version 2
// replaced the per-sample offset/size store of version 1 with the
// block-coded layout; version 3 appended the CRC-guarded delta-log
// section (readers still accept version 2, loading an empty log).
// Version-1 snapshots are rejected with a SnapshotError — snapshots are
// regenerable caches, so the remedy is to resample and save a fresh one.
const SnapshotVersion = 3

// snapshotVersionV2 is the newest prior version the reader still accepts:
// identical to 3 minus the delta-log section.
const snapshotVersionV2 = 2

// DefaultMaxSnapshotBytes is the largest snapshot a reader accepts unless
// the caller overrides the bound (4 GiB).
const DefaultMaxSnapshotBytes int64 = 4 << 30

// snapshotAllocChunk bounds how much buffer is grown ahead of the bytes
// actually read, like the transport's frameAllocChunk.
const snapshotAllocChunk = 64 << 10

// SnapshotMeta identifies the configuration a snapshot's sketch was
// sampled for; a loader rejects snapshots whose meta does not match the
// graph and parameters it intends to serve.
type SnapshotMeta struct {
	// GraphDigest is the stable digest of the sampled graph
	// (graph.Graph.Digest): structure and weights.
	GraphDigest uint64
	// Model is the diffusion model ordinal (diffuse.Model).
	Model uint8
	// Epsilon is the accuracy parameter theta was sized for.
	Epsilon float64
	// KMax is the seed-set bound theta was sized for; queries for any
	// k <= KMax are served from the sketch.
	KMax int
	// Seed fed the sampling streams.
	Seed uint64
	// Theta is the sample count the estimation phase settled on.
	Theta int64
}

// SnapshotError reports a snapshot rejected during load: bad magic,
// unsupported version, an over-limit size claim, a structural
// inconsistency, or a checksum mismatch.
type SnapshotError struct {
	Reason string
}

func (e *SnapshotError) Error() string { return "rrr: invalid snapshot: " + e.Reason }

// WriteSnapshot serializes meta, col, idx (may be nil) and the delta
// replay log (may be nil/empty) to w in the versioned, checksummed
// snapshot format.
func WriteSnapshot(w io.Writer, meta SnapshotMeta, col *CodedCollection, idx *Index, deltas []graph.Delta) error {
	crc := crc32.New(castagnoli)
	sw := &snapshotWriter{w: io.MultiWriter(w, crc)}
	sw.raw(snapshotMagic[:])
	sw.u32(SnapshotVersion)

	sw.u64(meta.GraphDigest)
	sw.u64(uint64(meta.Model))
	sw.u64(math.Float64bits(meta.Epsilon))
	sw.u64(uint64(meta.KMax))
	sw.u64(meta.Seed)
	sw.u64(uint64(meta.Theta))

	sw.u64(uint64(col.n))
	sw.u64(uint64(col.count))
	sw.u64(uint64(col.total))
	sw.u64(uint64(len(col.data)))
	sw.int64s(col.blockOffs)
	sw.raw(col.data)

	if col.relab == nil {
		sw.u64(0)
	} else {
		sw.u64(1)
		sw.uint32s(col.relab.Table())
	}

	if idx == nil {
		sw.u64(0)
	} else {
		sw.u64(1)
		sw.int64s(idx.offsets)
		sw.u64(uint64(len(idx.samples)))
		sw.int32s(idx.samples)
	}

	// Delta-log section, with its own CRC over the section bytes: the
	// section checksum is written through the file-CRC stream too, so the
	// trailing checksum still covers the whole file.
	sec := crc32.New(castagnoli)
	inner := sw.w
	sw.w = io.MultiWriter(inner, sec)
	sw.u64(uint64(len(deltas)))
	for _, d := range deltas {
		sw.u64(uint64(len(d)))
		for _, op := range d {
			sw.raw([]byte{byte(op.Kind)})
			sw.u32(uint32(op.Src))
			sw.u32(uint32(op.Dst))
			sw.u32(math.Float32bits(op.W))
		}
	}
	sw.w = inner
	sw.u32(sec.Sum32())

	if sw.err != nil {
		return sw.err
	}
	// The trailing checksum covers everything written so far and is not
	// itself checksummed.
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// ReadSnapshot parses a snapshot from r, accepting at most maxBytes of
// payload claims (<= 0 uses DefaultMaxSnapshotBytes). The returned Index
// is nil when the snapshot was written without one, and the returned
// delta log is nil for version-2 snapshots and empty logs.
func ReadSnapshot(r io.Reader, maxBytes int64) (SnapshotMeta, *CodedCollection, *Index, []graph.Delta, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxSnapshotBytes
	}
	crc := crc32.New(castagnoli)
	sr := &snapshotReader{r: io.TeeReader(r, crc), max: maxBytes}

	var meta SnapshotMeta
	var magic [8]byte
	sr.raw(magic[:])
	if sr.err == nil && magic != snapshotMagic {
		sr.fail("bad magic")
	}
	version := sr.u32()
	if sr.err == nil && version != SnapshotVersion && version != snapshotVersionV2 {
		sr.fail(fmt.Sprintf("unsupported version %d (want %d or %d; resample and save a fresh snapshot)",
			version, snapshotVersionV2, SnapshotVersion))
	}

	meta.GraphDigest = sr.u64()
	if m := sr.u64(); sr.err == nil && m > 255 {
		sr.fail(fmt.Sprintf("model ordinal %d out of range", m))
	} else {
		meta.Model = uint8(m)
	}
	meta.Epsilon = math.Float64frombits(sr.u64())
	meta.KMax = int(sr.claim("kMax"))
	meta.Seed = sr.u64()
	meta.Theta = sr.claim("theta")

	n := sr.claim("vertex count")
	count := sr.claim("sample count")
	total := sr.claim("total entries")
	dataLen := sr.claim("data length")
	nBlocks := (count + codedBlockSamples - 1) >> codedBlockShift
	col := &CodedCollection{
		n:         int(n),
		count:     int(count),
		total:     total,
		blockOffs: sr.int64s(nBlocks, "store block offsets"),
		data:      sr.bytes(dataLen, "store data"),
	}
	switch present := sr.u64(); {
	case sr.err != nil:
	case present == 1:
		table := sr.uint32s(n, "relabel table")
		if sr.err == nil {
			relab, err := RelabelingFromTable(table)
			if err != nil {
				sr.fail(err.Error())
			} else {
				col.relab = relab
			}
		}
	case present != 0:
		sr.fail("bad relabel-present flag")
	}
	if sr.err == nil {
		// Full structural walk: block offsets, length prefixes, varint
		// payloads, strict ascent, code range, count and total agreement.
		if err := validateCoded(col.n, col.count, col.total, col.blockOffs, col.data); err != nil {
			sr.fail(err.Error())
		}
	}

	var idx *Index
	switch present := sr.u64(); {
	case sr.err != nil:
	case present == 1:
		idx = &Index{offsets: sr.int64s(n+1, "index offsets")}
		samplesLen := sr.claim("index samples length")
		idx.samples = sr.int32s(samplesLen, "index samples")
		if sr.err == nil {
			if idx.offsets[0] != 0 || idx.offsets[n] != samplesLen {
				sr.fail("index offsets disagree with samples length")
			}
			for v := 0; sr.err == nil && v < int(n); v++ {
				if idx.offsets[v] > idx.offsets[v+1] {
					sr.fail(fmt.Sprintf("index offsets not monotone at vertex %d", v))
				}
			}
		}
	case present != 0:
		sr.fail("bad index-present flag")
	}

	var deltas []graph.Delta
	if version >= SnapshotVersion && sr.err == nil {
		deltas = sr.deltaLog(n)
	}

	if sr.err == nil {
		want := crc.Sum32() // everything consumed so far
		var tail [4]byte
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			sr.err = err
		} else if got := binary.LittleEndian.Uint32(tail[:]); got != want {
			sr.fail(fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", got, want))
		}
	}
	if sr.err != nil {
		return SnapshotMeta{}, nil, nil, nil, sr.err
	}
	return meta, col, idx, deltas, nil
}

// deltaLog parses the v3 delta-log section, verifying its section CRC and
// every op against the vertex universe n before the log is trusted for
// replay. Returns nil for an empty log.
func (r *snapshotReader) deltaLog(n int64) []graph.Delta {
	sec := crc32.New(castagnoli)
	inner := r.r
	r.r = io.TeeReader(inner, sec)

	batches := r.claim("delta log: batch count")
	var deltas []graph.Delta
	for b := int64(0); b < batches && r.err == nil; b++ {
		ops := r.claim("delta log: op count")
		d := make(graph.Delta, 0, min(ops, snapshotAllocChunk/16))
		for o := int64(0); o < ops && r.err == nil; o++ {
			var kind [1]byte
			r.raw(kind[:])
			src, dst := r.u32(), r.u32()
			w := math.Float32frombits(r.u32())
			if r.err != nil {
				break
			}
			if kind[0] > uint8(graph.DeltaDelete) {
				r.fail(fmt.Sprintf("delta log: batch %d op %d has unknown kind %d", b, o, kind[0]))
				break
			}
			if int64(src) >= n || int64(dst) >= n {
				r.fail(fmt.Sprintf("delta log: batch %d op %d endpoint out of range [0,%d)", b, o, n))
				break
			}
			if !(w >= 0 && w <= 1) {
				r.fail(fmt.Sprintf("delta log: batch %d op %d weight %v outside [0,1]", b, o, w))
				break
			}
			d = append(d, graph.DeltaOp{
				Kind: graph.DeltaOpKind(kind[0]),
				Src:  graph.Vertex(src), Dst: graph.Vertex(dst), W: w,
			})
		}
		if r.err == nil {
			deltas = append(deltas, d)
		}
	}

	r.r = inner
	want := sec.Sum32()
	if got := r.u32(); r.err == nil && got != want {
		r.fail(fmt.Sprintf("delta log: section checksum mismatch (stored %08x, computed %08x)", got, want))
	}
	return deltas
}

// SaveSnapshotFile writes the snapshot atomically: to a temp file in the
// target directory, synced, then renamed over path.
func SaveSnapshotFile(path string, meta SnapshotMeta, col *CodedCollection, idx *Index, deltas []graph.Delta) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	bw := bufio.NewWriterSize(f, snapshotAllocChunk)
	err = WriteSnapshot(bw, meta, col, idx, deltas)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}

// LoadSnapshotFile reads a snapshot from path with the given payload bound
// (<= 0 uses DefaultMaxSnapshotBytes).
func LoadSnapshotFile(path string, maxBytes int64) (SnapshotMeta, *CodedCollection, *Index, []graph.Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return SnapshotMeta{}, nil, nil, nil, err
	}
	defer f.Close()
	return ReadSnapshot(bufio.NewReaderSize(f, snapshotAllocChunk), maxBytes)
}

// castagnoli is the CRC-32C table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// snapshotWriter serializes fields, latching the first error.
type snapshotWriter struct {
	w   io.Writer
	buf [snapshotAllocChunk]byte
	err error
}

func (w *snapshotWriter) raw(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *snapshotWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.raw(b[:])
}

func (w *snapshotWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.raw(b[:])
}

// int64s writes a slice through the chunk buffer, bounding transient
// encoding memory regardless of array size.
func (w *snapshotWriter) int64s(vs []int64) {
	const per = 8
	for len(vs) > 0 && w.err == nil {
		batch := min(len(vs), len(w.buf)/per)
		for i, v := range vs[:batch] {
			binary.LittleEndian.PutUint64(w.buf[i*per:], uint64(v))
		}
		w.raw(w.buf[:batch*per])
		vs = vs[batch:]
	}
}

func (w *snapshotWriter) int32s(vs []int32) {
	const per = 4
	for len(vs) > 0 && w.err == nil {
		batch := min(len(vs), len(w.buf)/per)
		for i, v := range vs[:batch] {
			binary.LittleEndian.PutUint32(w.buf[i*per:], uint32(v))
		}
		w.raw(w.buf[:batch*per])
		vs = vs[batch:]
	}
}

func (w *snapshotWriter) uint32s(vs []uint32) {
	const per = 4
	for len(vs) > 0 && w.err == nil {
		batch := min(len(vs), len(w.buf)/per)
		for i, v := range vs[:batch] {
			binary.LittleEndian.PutUint32(w.buf[i*per:], v)
		}
		w.raw(w.buf[:batch*per])
		vs = vs[batch:]
	}
}

// snapshotReader parses fields, latching the first error and enforcing the
// max-size bound on every length claim before allocating for it.
type snapshotReader struct {
	r   io.Reader
	max int64
	err error
}

func (r *snapshotReader) fail(reason string) {
	if r.err == nil {
		r.err = &SnapshotError{Reason: reason}
	}
}

func (r *snapshotReader) raw(b []byte) {
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b)
	}
}

func (r *snapshotReader) u32() uint32 {
	var b [4]byte
	r.raw(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *snapshotReader) u64() uint64 {
	var b [8]byte
	r.raw(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// claim reads a u64 header field that counts things and validates it
// against the snapshot bound before anyone sizes an allocation from it.
func (r *snapshotReader) claim(what string) int64 {
	v := r.u64()
	if r.err == nil && v > uint64(r.max) {
		r.fail(fmt.Sprintf("%s claims %d, max %d", what, v, r.max))
	}
	return int64(v)
}

// bytes reads length bytes, growing the buffer in bounded chunks as bytes
// actually arrive (readFrame's allocation discipline).
func (r *snapshotReader) bytes(length int64, what string) []byte {
	if r.err != nil {
		return nil
	}
	if length < 0 || length > r.max {
		r.fail(fmt.Sprintf("%s claims %d bytes, max %d", what, length, r.max))
		return nil
	}
	buf := make([]byte, 0, min(length, snapshotAllocChunk))
	for remaining := length; remaining > 0 && r.err == nil; {
		n := min(remaining, snapshotAllocChunk)
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		r.raw(buf[start:])
		remaining -= n
	}
	return buf
}

func (r *snapshotReader) int64s(count int64, what string) []int64 {
	const per = 8
	if r.err != nil {
		return nil
	}
	if count < 0 || count > r.max/per {
		r.fail(fmt.Sprintf("%s claims %d entries, max %d", what, count, r.max/per))
		return nil
	}
	vs := make([]int64, 0, min(count, snapshotAllocChunk/per))
	var chunk [snapshotAllocChunk]byte
	for remaining := count; remaining > 0 && r.err == nil; {
		batch := min(remaining, int64(len(chunk)/per))
		b := chunk[:batch*per]
		r.raw(b)
		for i := int64(0); i < batch; i++ {
			vs = append(vs, int64(binary.LittleEndian.Uint64(b[i*per:])))
		}
		remaining -= batch
	}
	return vs
}

func (r *snapshotReader) uint32s(count int64, what string) []uint32 {
	const per = 4
	if r.err != nil {
		return nil
	}
	if count < 0 || count > r.max/per {
		r.fail(fmt.Sprintf("%s claims %d entries, max %d", what, count, r.max/per))
		return nil
	}
	vs := make([]uint32, 0, min(count, snapshotAllocChunk/per))
	var chunk [snapshotAllocChunk]byte
	for remaining := count; remaining > 0 && r.err == nil; {
		batch := min(remaining, int64(len(chunk)/per))
		b := chunk[:batch*per]
		r.raw(b)
		for i := int64(0); i < batch; i++ {
			vs = append(vs, binary.LittleEndian.Uint32(b[i*per:]))
		}
		remaining -= batch
	}
	return vs
}

func (r *snapshotReader) int32s(count int64, what string) []int32 {
	const per = 4
	if r.err != nil {
		return nil
	}
	if count < 0 || count > r.max/per {
		r.fail(fmt.Sprintf("%s claims %d entries, max %d", what, count, r.max/per))
		return nil
	}
	vs := make([]int32, 0, min(count, snapshotAllocChunk/per))
	var chunk [snapshotAllocChunk]byte
	for remaining := count; remaining > 0 && r.err == nil; {
		batch := min(remaining, int64(len(chunk)/per))
		b := chunk[:batch*per]
		r.raw(b)
		for i := int64(0); i < batch; i++ {
			vs = append(vs, int32(binary.LittleEndian.Uint32(b[i*per:])))
		}
		remaining -= batch
	}
	return vs
}
