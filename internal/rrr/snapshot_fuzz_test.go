package rrr

import (
	"bytes"
	"encoding/binary"
	"slices"
	"testing"

	"influmax/internal/graph"
)

// FuzzLoadSnapshot hammers the snapshot decoder with adversarial byte
// streams, the same discipline as the transport's FuzzReadFrame: it must
// never panic, never allocate past the configured bound, and whatever it
// accepts must re-encode to exactly the bytes it consumed (the checksum
// makes blind acceptance of mutated input practically impossible).
func FuzzLoadSnapshot(f *testing.F) {
	seedCase := func(seed uint64, n, count int, withIndex bool, deltas []graph.Delta) []byte {
		meta, col, idx := snapshotFixture(seed, n, count)
		if !withIndex {
			idx = nil
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, meta, col, idx, deltas); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(snapshotMagic[:])
	valid := seedCase(5, 40, 8, true, nil)
	f.Add(valid)
	f.Add(seedCase(6, 3, 1, false, nil))
	f.Add(valid[:len(valid)/2])                    // truncated mid-array
	f.Add(append(slices.Clone(valid), byte(0x00))) // trailing byte
	f.Add(bytes.Repeat([]byte{0xff}, 64))          // all-ones header claims
	corrupt := slices.Clone(valid)
	corrupt[len(corrupt)-2] ^= 0x01 // checksum bit flip
	f.Add(corrupt)
	// Delta-log seeds: a populated log, one truncated inside the log
	// section, and one with its section checksum flipped.
	withLog := seedCase(7, 40, 8, true, fixtureDeltaLog(7, 40))
	f.Add(withLog)
	f.Add(withLog[:len(withLog)-10])
	logCorrupt := slices.Clone(withLog)
	logCorrupt[len(logCorrupt)-6] ^= 0x01 // inside the section CRC
	f.Add(logCorrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxBytes = 1 << 16
		meta, col, idx, deltas, err := ReadSnapshot(bytes.NewReader(data), maxBytes)
		if err != nil {
			return
		}
		if col.Bytes() > 4*maxBytes {
			t.Fatalf("accepted %d-byte store past the %d bound", col.Bytes(), maxBytes)
		}
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, meta, col, idx, deltas); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		// An accepted version-2 file re-encodes as version 3 (the upgrade
		// path), so byte identity is only claimed for current-version input.
		if binary.LittleEndian.Uint32(data[8:12]) != SnapshotVersion {
			return
		}
		enc := buf.Bytes()
		if len(enc) > len(data) || !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("round trip mismatch: %d-byte re-encode from %d-byte input", len(enc), len(data))
		}
	})
}
