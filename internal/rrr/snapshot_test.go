package rrr

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"testing/quick"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

// snapshotFixture builds a coded store (frequency-relabeled on odd seeds,
// identity on even), its index and a meta block from a seed.
func snapshotFixture(seed uint64, n, count int) (SnapshotMeta, *CodedCollection, *Index) {
	r := rng.New(rng.NewLCG(seed))
	flat := NewCollection(n)
	for i := 0; i < count; i++ {
		flat.Append(randomSortedSet(r, n, r.Float64()*0.4))
	}
	var relab *Relabeling
	if seed%2 == 1 {
		relab = NewRelabeling(IncidenceOf(flat, 2))
	}
	col := FromCollection(flat, relab)
	idx := BuildIndexCoded(col, 3)
	meta := SnapshotMeta{
		GraphDigest: seed * 0x9e3779b97f4a7c15,
		Model:       uint8(seed % 2),
		Epsilon:     0.13,
		KMax:        int(seed%50) + 1,
		Seed:        seed,
		Theta:       int64(count),
	}
	return meta, col, idx
}

func encodeSnapshot(t *testing.T, meta SnapshotMeta, col *CodedCollection, idx *Index, deltas []graph.Delta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, meta, col, idx, deltas); err != nil {
		t.Fatalf("write: %v", err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTripByteIdentical is the property test of the format:
// save -> load -> save is byte-identical, and the loaded store and index
// behave exactly like the originals.
func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	check := func(seed uint64) bool {
		n := int(seed%300) + 2
		meta, col, idx := snapshotFixture(seed, n, int(seed%40)+1)
		deltas := fixtureDeltaLog(seed, n)
		first := encodeSnapshot(t, meta, col, idx, deltas)

		gotMeta, gotCol, gotIdx, gotDeltas, err := ReadSnapshot(bytes.NewReader(first), 0)
		if err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		if gotMeta != meta {
			t.Logf("seed %d: meta mismatch: %+v != %+v", seed, gotMeta, meta)
			return false
		}
		if !deltaLogsEqual(gotDeltas, deltas) {
			t.Logf("seed %d: delta log mismatch", seed)
			return false
		}
		second := encodeSnapshot(t, gotMeta, gotCol, gotIdx, gotDeltas)
		if !bytes.Equal(first, second) {
			t.Logf("seed %d: re-encode differs", seed)
			return false
		}
		if gotCol.Relabeled() != col.Relabeled() {
			t.Logf("seed %d: labeling lost", seed)
			return false
		}
		var a, b []graph.Vertex
		for i := 0; i < col.Count(); i++ {
			a, b = col.SampleSorted(i, a), gotCol.SampleSorted(i, b)
			if !slices.Equal(a, b) && !(len(a) == 0 && len(b) == 0) {
				return false
			}
		}
		for v := 0; v < n; v++ {
			if !slices.Equal(idx.SamplesOf(graph.Vertex(v)), gotIdx.SamplesOf(graph.Vertex(v))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotWithoutIndex checks the index-absent path: flag 0, nil index
// on load, still byte-identical on re-encode.
func TestSnapshotWithoutIndex(t *testing.T) {
	meta, col, _ := snapshotFixture(7, 64, 12)
	first := encodeSnapshot(t, meta, col, nil, nil)
	gotMeta, gotCol, gotIdx, gotDeltas, err := ReadSnapshot(bytes.NewReader(first), 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotIdx != nil {
		t.Fatal("index materialized out of nowhere")
	}
	if gotDeltas != nil {
		t.Fatal("delta log materialized out of nowhere")
	}
	if !bytes.Equal(first, encodeSnapshot(t, gotMeta, gotCol, nil, nil)) {
		t.Fatal("re-encode differs")
	}
}

// TestSnapshotRejectsCorruption flips, truncates and inflates a valid
// snapshot and checks every mutation is rejected rather than accepted or
// panicking.
func TestSnapshotRejectsCorruption(t *testing.T) {
	meta, col, idx := snapshotFixture(3, 120, 25)
	valid := encodeSnapshot(t, meta, col, idx, fixtureDeltaLog(3, 120))

	load := func(b []byte, max int64) error {
		_, _, _, _, err := ReadSnapshot(bytes.NewReader(b), max)
		return err
	}

	t.Run("bad magic", func(t *testing.T) {
		b := slices.Clone(valid)
		b[0] ^= 0xff
		var serr *SnapshotError
		if err := load(b, 0); !errors.As(err, &serr) {
			t.Fatalf("got %v, want SnapshotError", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := slices.Clone(valid)
		b[8] = 0xee
		var serr *SnapshotError
		if err := load(b, 0); !errors.As(err, &serr) {
			t.Fatalf("got %v, want SnapshotError", err)
		}
	})
	t.Run("oversize claim", func(t *testing.T) {
		// The vertex-count claim (first field of the store section, after
		// magic+version+6 meta words) forced past the bound.
		b := slices.Clone(valid)
		off := 8 + 4 + 6*8
		for i := 0; i < 8; i++ {
			b[off+i] = 0xff
		}
		var serr *SnapshotError
		if err := load(b, 1<<20); !errors.As(err, &serr) {
			t.Fatalf("got %v, want SnapshotError", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{len(valid) / 3, len(valid) - 3, 11, 20} {
			err := load(valid[:cut], 0)
			if err == nil {
				t.Fatalf("accepted %d-byte prefix", cut)
			}
			var serr *SnapshotError
			if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) && !errors.As(err, &serr) {
				t.Fatalf("cut %d: unexpected error %v", cut, err)
			}
		}
	})
	t.Run("payload bit flip fails checksum", func(t *testing.T) {
		b := slices.Clone(valid)
		b[len(b)/2] ^= 0x40
		err := load(b, 0)
		var serr *SnapshotError
		if !errors.As(err, &serr) {
			t.Fatalf("got %v, want SnapshotError", err)
		}
	})
	t.Run("trailing garbage ignored", func(t *testing.T) {
		// A reader consuming from a stream must not read past the
		// checksum.
		b := append(slices.Clone(valid), 0xde, 0xad)
		if err := load(b, 0); err != nil {
			t.Fatalf("trailing bytes broke the load: %v", err)
		}
	})
}

// TestSnapshotFileRoundTrip exercises the atomic file save/load pair.
func TestSnapshotFileRoundTrip(t *testing.T) {
	meta, col, idx := snapshotFixture(9, 80, 18)
	path := filepath.Join(t.TempDir(), "sketch.snap")
	deltas := fixtureDeltaLog(9, 80)
	if err := SaveSnapshotFile(path, meta, col, idx, deltas); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotCol, gotIdx, gotDeltas, err := LoadSnapshotFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta || gotCol.Count() != col.Count() || gotIdx == nil {
		t.Fatalf("round trip lost data: %+v, count %d", gotMeta, gotCol.Count())
	}
	if !deltaLogsEqual(gotDeltas, deltas) {
		t.Fatal("round trip lost the delta log")
	}
}

// TestSnapshotRejectsVersion1 pins the version discipline: a version-1
// header is refused with a SnapshotError telling the operator to resample
// (snapshots are regenerable caches; there is no migration path).
func TestSnapshotRejectsVersion1(t *testing.T) {
	meta, col, idx := snapshotFixture(4, 50, 10)
	b := encodeSnapshot(t, meta, col, idx, nil)
	binary.LittleEndian.PutUint32(b[8:], 1)
	_, _, _, _, err := ReadSnapshot(bytes.NewReader(b), 0)
	var serr *SnapshotError
	if !errors.As(err, &serr) {
		t.Fatalf("got %v, want SnapshotError", err)
	}
	if !strings.Contains(err.Error(), "version 1") || !strings.Contains(err.Error(), "resample") {
		t.Fatalf("rejection does not name the version or the remedy: %v", err)
	}
}

// TestSnapshotRelabelTableRoundTrip checks the relabel section explicitly:
// a frequency-relabeled store comes back with the identical code->original
// table, and an identity store comes back with none.
func TestSnapshotRelabelTableRoundTrip(t *testing.T) {
	meta, col, idx := snapshotFixture(13, 70, 20) // odd seed: relabeled
	if !col.Relabeled() {
		t.Fatal("fixture not relabeled")
	}
	_, got, _, _, err := ReadSnapshot(bytes.NewReader(encodeSnapshot(t, meta, col, idx, nil)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got.Relabeling().Table(), col.Relabeling().Table()) {
		t.Fatal("relabel table changed across the round trip")
	}

	meta, col, idx = snapshotFixture(12, 70, 20) // even seed: identity
	if col.Relabeled() {
		t.Fatal("fixture unexpectedly relabeled")
	}
	_, got, _, _, err = ReadSnapshot(bytes.NewReader(encodeSnapshot(t, meta, col, idx, nil)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Relabeled() {
		t.Fatal("identity store came back relabeled")
	}
}

// TestSnapshotRejectsBadRelabelTable corrupts the relabel table into a
// non-permutation and checks the load is refused.
func TestSnapshotRejectsBadRelabelTable(t *testing.T) {
	meta, col, idx := snapshotFixture(13, 64, 12)
	b := encodeSnapshot(t, meta, col, idx, nil)
	// The relabel table sits right after the store section; duplicate its
	// first entry into the second to break the permutation, then fix the
	// checksum so only the table validation can object.
	off := 8 + 4 + 6*8 + 4*8 + len(col.blockOffs)*8 + len(col.data) + 8
	copy(b[off+4:off+8], b[off:off+4])
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], castagnoli))
	_, _, _, _, err := ReadSnapshot(bytes.NewReader(b), 0)
	var serr *SnapshotError
	if !errors.As(err, &serr) {
		t.Fatalf("got %v, want SnapshotError", err)
	}
}

// fixtureDeltaLog derives a small valid delta log over n vertices from
// seed (nil for even seeds, so the empty-log path stays covered by the
// round-trip property).
func fixtureDeltaLog(seed uint64, n int) []graph.Delta {
	if seed%2 == 0 {
		return nil
	}
	r := rng.New(rng.NewLCG(seed))
	v := func() graph.Vertex { return graph.Vertex(r.Intn(n)) }
	batches := 1 + int(seed%3)
	log := make([]graph.Delta, 0, batches)
	for b := 0; b < batches; b++ {
		var d graph.Delta
		for o := 0; o <= r.Intn(4); o++ {
			if r.Intn(3) == 0 {
				d = append(d, graph.DeltaOp{Kind: graph.DeltaDelete, Src: v(), Dst: v()})
			} else {
				d = append(d, graph.DeltaOp{Kind: graph.DeltaInsert, Src: v(), Dst: v(), W: r.Float32()})
			}
		}
		log = append(log, d)
	}
	return log
}

func deltaLogsEqual(a, b []graph.Delta) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !slices.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// deltaSectionBytes returns the encoded size of a delta log section,
// excluding its trailing section CRC.
func deltaSectionBytes(deltas []graph.Delta) int {
	size := 8
	for _, d := range deltas {
		size += 8 + 13*len(d)
	}
	return size
}

// TestSnapshotV2Migration pins the forward-compatibility contract: a
// version-2 file (no delta section) loads cleanly with a nil delta log,
// the reader does not touch bytes past its checksum, and re-encoding the
// loaded state produces a valid (version-3) snapshot that round-trips
// byte-identically from then on.
func TestSnapshotV2Migration(t *testing.T) {
	meta, col, idx := snapshotFixture(5, 60, 10)
	v3 := encodeSnapshot(t, meta, col, idx, nil)

	// An empty v3 delta section is batches=0 (8 bytes) + section CRC (4);
	// stripping it and re-stamping version 2 reconstructs the exact v2
	// encoding of the same sketch.
	prefix := slices.Clone(v3[:len(v3)-16])
	binary.LittleEndian.PutUint32(prefix[8:], 2)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(prefix, castagnoli))
	v2 := append(prefix, tail[:]...)

	gotMeta, gotCol, gotIdx, gotDeltas, err := ReadSnapshot(bytes.NewReader(v2), 0)
	if err != nil {
		t.Fatalf("v2 snapshot rejected: %v", err)
	}
	if gotMeta != meta || gotCol.Count() != col.Count() || gotIdx == nil {
		t.Fatalf("v2 load lost data")
	}
	if gotDeltas != nil {
		t.Fatalf("v2 load produced a delta log: %v", gotDeltas)
	}

	// A v2 reader consuming from a stream stops at its checksum: trailing
	// bytes that happen to look like a delta section are not consumed.
	withTrailer := append(slices.Clone(v2), v3[len(v3)-16:]...)
	if _, _, _, _, err := ReadSnapshot(bytes.NewReader(withTrailer), 0); err != nil {
		t.Fatalf("trailing bytes broke the v2 load: %v", err)
	}

	// Saving the loaded state upgrades to v3 and is byte-stable after.
	up := encodeSnapshot(t, gotMeta, gotCol, gotIdx, gotDeltas)
	if !bytes.Equal(up, v3) {
		t.Fatalf("v2 state re-encoded differently from the v3 encoding of the same sketch")
	}
}

// TestSnapshotRejectsCorruptDeltaLog corrupts the delta-log section every
// way the format guards against and checks each is refused with a typed
// SnapshotError naming the section — the file-level CRC is repaired for
// each case, so only the section's own validation can object.
func TestSnapshotRejectsCorruptDeltaLog(t *testing.T) {
	const n = 60
	meta, col, idx := snapshotFixture(6, n, 10)
	deltas := []graph.Delta{
		{
			{Kind: graph.DeltaInsert, Src: 1, Dst: 2, W: 0.5},
			{Kind: graph.DeltaDelete, Src: 2, Dst: 3},
		},
		{{Kind: graph.DeltaInsert, Src: 4, Dst: 5, W: 0.25}},
	}
	valid := encodeSnapshot(t, meta, col, idx, deltas)
	secLen := deltaSectionBytes(deltas)
	secStart := len(valid) - 4 - 4 - secLen
	const (
		opKindOff = 16 // batches u64 + ops u64
		opSrcOff  = 17
		opWOff    = 25
	)

	// fixCRCs recomputes the section CRC and then the file CRC, so a test
	// mutation is visible only to the delta-log validation itself.
	fixCRCs := func(b []byte) {
		secEnd := len(b) - 8
		binary.LittleEndian.PutUint32(b[secEnd:], crc32.Checksum(b[secStart:secEnd], castagnoli))
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], castagnoli))
	}
	loadErr := func(b []byte) error {
		_, _, _, _, err := ReadSnapshot(bytes.NewReader(b), 0)
		return err
	}
	requireDeltaLogError := func(t *testing.T, err error, want string) {
		t.Helper()
		var serr *SnapshotError
		if !errors.As(err, &serr) {
			t.Fatalf("got %v, want SnapshotError", err)
		}
		if !strings.Contains(err.Error(), "delta log") || !strings.Contains(err.Error(), want) {
			t.Fatalf("rejection %q does not name the delta log and %q", err, want)
		}
	}

	t.Run("section bit flip fails section checksum", func(t *testing.T) {
		b := slices.Clone(valid)
		b[secStart+opSrcOff] ^= 0x01
		// Repair only the FILE checksum: the section checksum must catch it.
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], castagnoli))
		requireDeltaLogError(t, loadErr(b), "checksum")
	})
	t.Run("unknown op kind", func(t *testing.T) {
		b := slices.Clone(valid)
		b[secStart+opKindOff] = 7
		fixCRCs(b)
		requireDeltaLogError(t, loadErr(b), "unknown kind")
	})
	t.Run("endpoint out of range", func(t *testing.T) {
		b := slices.Clone(valid)
		binary.LittleEndian.PutUint32(b[secStart+opSrcOff:], n+100)
		fixCRCs(b)
		requireDeltaLogError(t, loadErr(b), "out of range")
	})
	t.Run("weight out of range", func(t *testing.T) {
		b := slices.Clone(valid)
		binary.LittleEndian.PutUint32(b[secStart+opWOff:], math.Float32bits(2.0))
		fixCRCs(b)
		requireDeltaLogError(t, loadErr(b), "weight")
	})
	t.Run("NaN weight", func(t *testing.T) {
		b := slices.Clone(valid)
		binary.LittleEndian.PutUint32(b[secStart+opWOff:], math.Float32bits(float32(math.NaN())))
		fixCRCs(b)
		requireDeltaLogError(t, loadErr(b), "weight")
	})
	t.Run("truncated mid-section", func(t *testing.T) {
		err := loadErr(valid[:secStart+opWOff])
		var serr *SnapshotError
		if err == nil {
			t.Fatal("accepted a snapshot truncated inside the delta section")
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) && !errors.As(err, &serr) {
			t.Fatalf("unexpected error %v", err)
		}
	})
	t.Run("absurd batch count", func(t *testing.T) {
		b := slices.Clone(valid)
		for i := 0; i < 8; i++ {
			b[secStart+i] = 0xff
		}
		fixCRCs(b)
		requireDeltaLogError(t, loadErr(b), "batch count")
	})
}
