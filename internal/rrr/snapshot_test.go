package rrr

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"testing/quick"

	"influmax/internal/graph"
	"influmax/internal/rng"
)

// snapshotFixture builds a coded store (frequency-relabeled on odd seeds,
// identity on even), its index and a meta block from a seed.
func snapshotFixture(seed uint64, n, count int) (SnapshotMeta, *CodedCollection, *Index) {
	r := rng.New(rng.NewLCG(seed))
	flat := NewCollection(n)
	for i := 0; i < count; i++ {
		flat.Append(randomSortedSet(r, n, r.Float64()*0.4))
	}
	var relab *Relabeling
	if seed%2 == 1 {
		relab = NewRelabeling(IncidenceOf(flat, 2))
	}
	col := FromCollection(flat, relab)
	idx := BuildIndexCoded(col, 3)
	meta := SnapshotMeta{
		GraphDigest: seed * 0x9e3779b97f4a7c15,
		Model:       uint8(seed % 2),
		Epsilon:     0.13,
		KMax:        int(seed%50) + 1,
		Seed:        seed,
		Theta:       int64(count),
	}
	return meta, col, idx
}

func encodeSnapshot(t *testing.T, meta SnapshotMeta, col *CodedCollection, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, meta, col, idx); err != nil {
		t.Fatalf("write: %v", err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTripByteIdentical is the property test of the format:
// save -> load -> save is byte-identical, and the loaded store and index
// behave exactly like the originals.
func TestSnapshotRoundTripByteIdentical(t *testing.T) {
	check := func(seed uint64) bool {
		n := int(seed%300) + 2
		meta, col, idx := snapshotFixture(seed, n, int(seed%40)+1)
		first := encodeSnapshot(t, meta, col, idx)

		gotMeta, gotCol, gotIdx, err := ReadSnapshot(bytes.NewReader(first), 0)
		if err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		if gotMeta != meta {
			t.Logf("seed %d: meta mismatch: %+v != %+v", seed, gotMeta, meta)
			return false
		}
		second := encodeSnapshot(t, gotMeta, gotCol, gotIdx)
		if !bytes.Equal(first, second) {
			t.Logf("seed %d: re-encode differs", seed)
			return false
		}
		if gotCol.Relabeled() != col.Relabeled() {
			t.Logf("seed %d: labeling lost", seed)
			return false
		}
		var a, b []graph.Vertex
		for i := 0; i < col.Count(); i++ {
			a, b = col.SampleSorted(i, a), gotCol.SampleSorted(i, b)
			if !slices.Equal(a, b) && !(len(a) == 0 && len(b) == 0) {
				return false
			}
		}
		for v := 0; v < n; v++ {
			if !slices.Equal(idx.SamplesOf(graph.Vertex(v)), gotIdx.SamplesOf(graph.Vertex(v))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotWithoutIndex checks the index-absent path: flag 0, nil index
// on load, still byte-identical on re-encode.
func TestSnapshotWithoutIndex(t *testing.T) {
	meta, col, _ := snapshotFixture(7, 64, 12)
	first := encodeSnapshot(t, meta, col, nil)
	gotMeta, gotCol, gotIdx, err := ReadSnapshot(bytes.NewReader(first), 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotIdx != nil {
		t.Fatal("index materialized out of nowhere")
	}
	if !bytes.Equal(first, encodeSnapshot(t, gotMeta, gotCol, nil)) {
		t.Fatal("re-encode differs")
	}
}

// TestSnapshotRejectsCorruption flips, truncates and inflates a valid
// snapshot and checks every mutation is rejected rather than accepted or
// panicking.
func TestSnapshotRejectsCorruption(t *testing.T) {
	meta, col, idx := snapshotFixture(3, 120, 25)
	valid := encodeSnapshot(t, meta, col, idx)

	load := func(b []byte, max int64) error {
		_, _, _, err := ReadSnapshot(bytes.NewReader(b), max)
		return err
	}

	t.Run("bad magic", func(t *testing.T) {
		b := slices.Clone(valid)
		b[0] ^= 0xff
		var serr *SnapshotError
		if err := load(b, 0); !errors.As(err, &serr) {
			t.Fatalf("got %v, want SnapshotError", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := slices.Clone(valid)
		b[8] = 0xee
		var serr *SnapshotError
		if err := load(b, 0); !errors.As(err, &serr) {
			t.Fatalf("got %v, want SnapshotError", err)
		}
	})
	t.Run("oversize claim", func(t *testing.T) {
		// The vertex-count claim (first field of the store section, after
		// magic+version+6 meta words) forced past the bound.
		b := slices.Clone(valid)
		off := 8 + 4 + 6*8
		for i := 0; i < 8; i++ {
			b[off+i] = 0xff
		}
		var serr *SnapshotError
		if err := load(b, 1<<20); !errors.As(err, &serr) {
			t.Fatalf("got %v, want SnapshotError", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{len(valid) / 3, len(valid) - 3, 11, 20} {
			err := load(valid[:cut], 0)
			if err == nil {
				t.Fatalf("accepted %d-byte prefix", cut)
			}
			var serr *SnapshotError
			if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) && !errors.As(err, &serr) {
				t.Fatalf("cut %d: unexpected error %v", cut, err)
			}
		}
	})
	t.Run("payload bit flip fails checksum", func(t *testing.T) {
		b := slices.Clone(valid)
		b[len(b)/2] ^= 0x40
		err := load(b, 0)
		var serr *SnapshotError
		if !errors.As(err, &serr) {
			t.Fatalf("got %v, want SnapshotError", err)
		}
	})
	t.Run("trailing garbage ignored", func(t *testing.T) {
		// A reader consuming from a stream must not read past the
		// checksum.
		b := append(slices.Clone(valid), 0xde, 0xad)
		if err := load(b, 0); err != nil {
			t.Fatalf("trailing bytes broke the load: %v", err)
		}
	})
}

// TestSnapshotFileRoundTrip exercises the atomic file save/load pair.
func TestSnapshotFileRoundTrip(t *testing.T) {
	meta, col, idx := snapshotFixture(9, 80, 18)
	path := filepath.Join(t.TempDir(), "sketch.snap")
	if err := SaveSnapshotFile(path, meta, col, idx); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotCol, gotIdx, err := LoadSnapshotFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta || gotCol.Count() != col.Count() || gotIdx == nil {
		t.Fatalf("round trip lost data: %+v, count %d", gotMeta, gotCol.Count())
	}
}

// TestSnapshotRejectsVersion1 pins the version discipline: a version-1
// header is refused with a SnapshotError telling the operator to resample
// (snapshots are regenerable caches; there is no migration path).
func TestSnapshotRejectsVersion1(t *testing.T) {
	meta, col, idx := snapshotFixture(4, 50, 10)
	b := encodeSnapshot(t, meta, col, idx)
	binary.LittleEndian.PutUint32(b[8:], 1)
	_, _, _, err := ReadSnapshot(bytes.NewReader(b), 0)
	var serr *SnapshotError
	if !errors.As(err, &serr) {
		t.Fatalf("got %v, want SnapshotError", err)
	}
	if !strings.Contains(err.Error(), "version 1") || !strings.Contains(err.Error(), "resample") {
		t.Fatalf("rejection does not name the version or the remedy: %v", err)
	}
}

// TestSnapshotRelabelTableRoundTrip checks the relabel section explicitly:
// a frequency-relabeled store comes back with the identical code->original
// table, and an identity store comes back with none.
func TestSnapshotRelabelTableRoundTrip(t *testing.T) {
	meta, col, idx := snapshotFixture(13, 70, 20) // odd seed: relabeled
	if !col.Relabeled() {
		t.Fatal("fixture not relabeled")
	}
	_, got, _, err := ReadSnapshot(bytes.NewReader(encodeSnapshot(t, meta, col, idx)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got.Relabeling().Table(), col.Relabeling().Table()) {
		t.Fatal("relabel table changed across the round trip")
	}

	meta, col, idx = snapshotFixture(12, 70, 20) // even seed: identity
	if col.Relabeled() {
		t.Fatal("fixture unexpectedly relabeled")
	}
	_, got, _, err = ReadSnapshot(bytes.NewReader(encodeSnapshot(t, meta, col, idx)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Relabeled() {
		t.Fatal("identity store came back relabeled")
	}
}

// TestSnapshotRejectsBadRelabelTable corrupts the relabel table into a
// non-permutation and checks the load is refused.
func TestSnapshotRejectsBadRelabelTable(t *testing.T) {
	meta, col, idx := snapshotFixture(13, 64, 12)
	b := encodeSnapshot(t, meta, col, idx)
	// The relabel table sits right after the store section; duplicate its
	// first entry into the second to break the permutation, then fix the
	// checksum so only the table validation can object.
	off := 8 + 4 + 6*8 + 4*8 + len(col.blockOffs)*8 + len(col.data) + 8
	copy(b[off+4:off+8], b[off:off+4])
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], castagnoli))
	_, _, _, err := ReadSnapshot(bytes.NewReader(b), 0)
	var serr *SnapshotError
	if !errors.As(err, &serr) {
		t.Fatalf("got %v, want SnapshotError", err)
	}
}
