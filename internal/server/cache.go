package server

import (
	"context"
	"slices"
	"sync"
)

// sketchCache holds resident sketches keyed by SketchKey with
// single-flight population: the first query for an uncached key starts
// exactly one build; a thundering herd of concurrent queries for the same
// key all wait on that one build (each bounded by its own context) instead
// of each triggering a sampling run. Builds run detached, so a waiter
// timing out does not abort the build — the sketch still lands in the
// cache for the retry the 503/Retry-After response invites.
type sketchCache struct {
	mu      sync.Mutex
	max     int // resident bound; <= 0 means unbounded
	entries map[SketchKey]*cacheEntry
	order   []SketchKey // insertion order, for eviction
}

// cacheEntry is one key's slot: ready closes when the build finishes
// (successfully or not).
type cacheEntry struct {
	ready  chan struct{}
	sketch *Sketch
	err    error
}

func newSketchCache(max int) *sketchCache {
	return &sketchCache{max: max, entries: make(map[SketchKey]*cacheEntry)}
}

// get returns the sketch for key, building it via build if absent. hit
// reports whether an entry (ready or in flight) already existed. The
// context bounds only this caller's wait, never the build itself. A failed
// build is not cached: the error goes to every waiter, then the slot is
// freed so a later query can retry.
func (c *sketchCache) get(ctx context.Context, key SketchKey, build func() (*Sketch, error)) (sk *Sketch, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{ready: make(chan struct{})}
		c.entries[key] = e
		c.order = append(c.order, key)
		c.evictLocked(key)
		go func() {
			sk, err := build()
			c.mu.Lock()
			e.sketch, e.err = sk, err
			if err != nil {
				delete(c.entries, key)
				if i := slices.Index(c.order, key); i >= 0 {
					c.order = slices.Delete(c.order, i, i+1)
				}
			}
			c.mu.Unlock()
			close(e.ready)
		}()
	}
	c.mu.Unlock()
	// A finished entry always wins, even over an already-expired context:
	// the data is resident, so failing the caller would be gratuitous.
	select {
	case <-e.ready:
		return e.sketch, ok, e.err
	default:
	}
	select {
	case <-e.ready:
		return e.sketch, ok, e.err
	case <-ctx.Done():
		return nil, ok, ctx.Err()
	}
}

// put inserts a prebuilt (snapshot-loaded) sketch.
func (c *sketchCache) put(s *Sketch) {
	e := &cacheEntry{ready: make(chan struct{}), sketch: s}
	close(e.ready)
	c.mu.Lock()
	if _, ok := c.entries[s.Key]; !ok {
		c.entries[s.Key] = e
		c.order = append(c.order, s.Key)
		c.evictLocked(s.Key)
	}
	c.mu.Unlock()
}

// len returns the number of resident entries (including in-flight builds).
func (c *sketchCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// evictLocked drops the oldest finished entry while over capacity,
// sparing keep (the entry just inserted) and in-flight builds (evicting a
// build in progress would detach its waiters from the slot and invite a
// duplicate run).
func (c *sketchCache) evictLocked(keep SketchKey) {
	if c.max <= 0 {
		return
	}
	for i := 0; len(c.entries) > c.max && i < len(c.order); {
		key := c.order[i]
		e := c.entries[key]
		done := false
		select {
		case <-e.ready:
			done = true
		default:
		}
		if key == keep || !done {
			i++
			continue
		}
		delete(c.entries, key)
		c.order = slices.Delete(c.order, i, i+1)
	}
}
