package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func cacheKey(seed uint64) SketchKey {
	return SketchKey{GraphDigest: 0xfeed, Epsilon: 0.5, KMax: 10, Seed: seed}
}

// TestCacheSingleFlight: a herd of concurrent gets for one uncached key
// must trigger exactly one build, and everyone must receive that build's
// sketch.
func TestCacheSingleFlight(t *testing.T) {
	c := newSketchCache(4)
	key := cacheKey(1)
	var builds atomic.Int64
	want := &Sketch{Key: key}

	const herd = 32
	var wg sync.WaitGroup
	got := make([]*Sketch, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sk, _, err := c.get(context.Background(), key, func() (*Sketch, error) {
				builds.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the herd window
				return want, nil
			})
			if err != nil {
				t.Errorf("get: %v", err)
			}
			got[i] = sk
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("builds = %d, want 1", builds.Load())
	}
	for i, sk := range got {
		if sk != want {
			t.Fatalf("waiter %d got %p, want %p", i, sk, want)
		}
	}
	if c.len() != 1 {
		t.Fatalf("cache len = %d, want 1", c.len())
	}
}

// TestCacheFailedBuildRetries: a failed build must propagate its error to
// every waiter and then free the slot, so the next query retries instead
// of being served a cached failure forever.
func TestCacheFailedBuildRetries(t *testing.T) {
	c := newSketchCache(4)
	key := cacheKey(2)
	boom := errors.New("sampler exploded")

	_, _, err := c.get(context.Background(), key, func() (*Sketch, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("first get err = %v, want %v", err, boom)
	}
	if c.len() != 0 {
		t.Fatalf("failed build left %d entries resident", c.len())
	}

	want := &Sketch{Key: key}
	sk, hit, err := c.get(context.Background(), key, func() (*Sketch, error) { return want, nil })
	if err != nil || sk != want {
		t.Fatalf("retry get = (%p, %v), want (%p, nil)", sk, err, want)
	}
	if hit {
		t.Fatal("retry after failure reported as cache hit")
	}
}

// TestCacheWaiterTimeoutDetachesFromBuild: a waiter's context expiring
// returns promptly, but the build keeps running and lands in the cache for
// the retry.
func TestCacheWaiterTimeoutDetachesFromBuild(t *testing.T) {
	c := newSketchCache(4)
	key := cacheKey(3)
	release := make(chan struct{})
	want := &Sketch{Key: key}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err := c.get(ctx, key, func() (*Sketch, error) {
		<-release
		return want, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out waiter err = %v, want deadline exceeded", err)
	}

	close(release)
	sk, hit, err := c.get(context.Background(), key, func() (*Sketch, error) {
		t.Error("retry must not rebuild: the detached build owns the slot")
		return nil, nil
	})
	if err != nil || sk != want {
		t.Fatalf("retry = (%p, %v), want (%p, nil)", sk, err, want)
	}
	if !hit {
		t.Fatal("retry should hit the detached build's slot")
	}
}

// TestCacheEviction: over capacity the oldest finished entry goes first;
// in-flight builds are never evicted.
func TestCacheEviction(t *testing.T) {
	c := newSketchCache(2)
	for seed := uint64(0); seed < 3; seed++ {
		c.put(&Sketch{Key: cacheKey(seed)})
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.entries[cacheKey(0)]; ok {
		t.Fatal("oldest entry survived eviction")
	}
	for seed := uint64(1); seed < 3; seed++ {
		if _, ok := c.entries[cacheKey(seed)]; !ok {
			t.Fatalf("entry %d evicted, want resident", seed)
		}
	}

	// An in-flight build must survive even when it is the oldest.
	c2 := newSketchCache(1)
	release := make(chan struct{})
	go c2.get(context.Background(), cacheKey(10), func() (*Sketch, error) {
		<-release
		return &Sketch{Key: cacheKey(10)}, nil
	})
	for c2.len() == 0 {
		time.Sleep(time.Millisecond)
	}
	c2.put(&Sketch{Key: cacheKey(11)})
	c2.mu.Lock()
	_, inflight := c2.entries[cacheKey(10)]
	c2.mu.Unlock()
	if !inflight {
		t.Fatal("in-flight build was evicted")
	}
	close(release)
}

// TestCachePutIdempotent: put never displaces an existing entry for the
// same key.
func TestCachePutIdempotent(t *testing.T) {
	c := newSketchCache(4)
	first := &Sketch{Key: cacheKey(7)}
	c.put(first)
	c.put(&Sketch{Key: cacheKey(7)})
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	sk, hit, err := c.get(context.Background(), cacheKey(7), func() (*Sketch, error) {
		t.Error("get after put must not build")
		return nil, nil
	})
	if err != nil || sk != first || !hit {
		t.Fatalf("get = (%p, %v, %v), want (%p, true, nil)", sk, hit, err, first)
	}
}
