package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
	"time"

	"influmax/internal/cluster"
	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
)

// TestShardModeFleetMatchesSingleProcess is the HTTP half of the cluster
// acceptance gate: three immserve replicas in shard mode behind a router
// over real HTTP must serve seeds byte-identical to one single-process
// server at the same (graph, model, eps, k, seed).
func TestShardModeFleetMatchesSingleProcess(t *testing.T) {
	g := testGraph(13, 150, 1000)
	opt := cluster.BuildOptions{
		K: 10, Epsilon: 0.5, Model: diffuse.IC, Seed: 42, Workers: 4, Shards: 3,
	}
	const k = 8

	// Single-process reference at the fleet configuration.
	_, coded, idx, err := imm.RunSketch(g, imm.Options{
		K: opt.K, Epsilon: opt.Epsilon, Model: opt.Model, Seed: opt.Seed, Workers: opt.Workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSeeds, _ := imm.SelectSeedsSketch(coded, idx, k, opt.Workers)

	shards, err := cluster.BuildShards(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	conns := make([]cluster.Conn, len(shards))
	for i, sh := range shards {
		cfg := testConfig(g)
		cfg.ClusterShard = sh
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		conns[i] = cluster.NewHTTPConn(ts.URL, i, 5*time.Second)

		// A shard replica must not answer seed queries itself — its slice
		// of the samples would give silently wrong seeds.
		resp, err := ts.Client().Post(ts.URL+"/v1/seeds", "application/json", strings.NewReader(`{"k":3}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("shard %d answered /v1/seeds with %d, want 400", i, resp.StatusCode)
		}

		// The identity endpoint serves the shard's coordinates.
		ir, err := ts.Client().Get(ts.URL + "/v1/shard/info")
		if err != nil {
			t.Fatal(err)
		}
		var info struct {
			ShardIdx   int `json:"shardIdx"`
			ShardCount int `json:"shardCount"`
		}
		if err := json.NewDecoder(ir.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		ir.Body.Close()
		if info.ShardIdx != i || info.ShardCount != 3 {
			t.Fatalf("shard %d reports identity %+v", i, info)
		}
	}

	rt, err := cluster.NewRouter(conns, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Select(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res.Seeds, wantSeeds) {
		t.Fatalf("fleet seeds %v != single-process %v", res.Seeds, wantSeeds)
	}
	if res.Degraded {
		t.Fatalf("healthy HTTP fleet reported degraded: %v", res.FailedShards)
	}
}

// TestShardModeRejectsDynamic pins the mode exclusion: a shard serves a
// static sample slice, so dynamic mutation must be refused at startup.
func TestShardModeRejectsDynamic(t *testing.T) {
	g := testGraph(13, 60, 350)
	shards, err := cluster.BuildShards(g, cluster.BuildOptions{
		K: 4, Epsilon: 0.5, Model: diffuse.IC, Seed: 42, Workers: 2, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := dynConfig(g)
	cfg.ClusterShard = shards[0]
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("shard+dynamic config accepted: %v", err)
	}

	// And a digest mismatch (shard built from a different graph) is refused.
	other := testGraph(99, 60, 350)
	cfg2 := testConfig(other)
	cfg2.ClusterShard = shards[0]
	if _, err := New(cfg2); err == nil || !strings.Contains(err.Error(), "graph") {
		t.Fatalf("mismatched shard digest accepted: %v", err)
	}
}

// TestDeltaCoalescing holds the mutation lock while three clients queue
// delta batches, then releases it: the winner must fold all three into ONE
// repair pass — one epoch bump, one publish — and every client sees the
// merged verdict with Coalesced = 3.
func TestDeltaCoalescing(t *testing.T) {
	g := testGraph(7, 120, 800)
	s, err := New(dynConfig(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	epoch0 := s.ServingSketch().DeltaEpoch
	ops := absentEdges(t, g, 3)

	// Park the repair path so the three batches pile up in the queue.
	s.dynMu.Lock()
	type verdict struct {
		status int
		resp   deltaResponse
	}
	done := make(chan verdict, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			status, dr, _ := postDelta(t, ts.Client(), ts.URL,
				opsJSON(graph.Delta{ops[i]}))
			done <- verdict{status, dr}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.deltaMu.Lock()
		n := len(s.deltaPending)
		s.deltaMu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			s.dynMu.Unlock()
			t.Fatalf("only %d/3 deltas queued", n)
		}
		time.Sleep(time.Millisecond)
	}
	s.dynMu.Unlock()

	for i := 0; i < 3; i++ {
		v := <-done
		if v.status != http.StatusOK {
			t.Fatalf("coalesced delta got status %d", v.status)
		}
		if v.resp.Coalesced != 3 {
			t.Fatalf("response coalesced = %d, want 3", v.resp.Coalesced)
		}
		if v.resp.Applied != 3 {
			t.Fatalf("merged batch applied %d ops, want 3", v.resp.Applied)
		}
		if v.resp.Epoch != epoch0+1 {
			t.Fatalf("merged batch bumped epoch to %d, want %d (exactly one repair pass)",
				v.resp.Epoch, epoch0+1)
		}
	}
	if got := s.mCoalesced.Value(); got != 2 {
		t.Fatalf("server/delta-coalesced = %d, want 2", got)
	}
	// All three inserts landed despite the single pass.
	for _, op := range ops {
		if !hasEdge(s.dyn.Graph(), op.Src, op.Dst) {
			t.Fatalf("edge %d->%d missing after coalesced apply", op.Src, op.Dst)
		}
	}
}

// TestQueueDepthGauge: the server/queue-depth gauge tracks admitted
// work — parked queries raise it, completion returns it to zero, and it is
// visible through /v1/metrics.
func TestQueueDepthGauge(t *testing.T) {
	g := testGraph(7, 120, 800)
	cfg := testConfig(g)
	cfg.KMax = 20
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	s.testQueryHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 2)
	post := func() {
		status, _, _ := postSeeds(t, ts.Client(), ts.URL, `{"k":5}`)
		done <- status
	}
	go post()
	<-entered
	go post()
	for s.admitted.Load() != 2 {
		time.Sleep(time.Millisecond)
	}
	if got := s.mQueueDepth.Value(); got != 2 {
		t.Fatalf("queue-depth gauge = %d with 2 admitted, want 2", got)
	}

	// The gauge is on the wire, not just in memory.
	mr, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	if snap.Gauges["server/queue-depth"] != 2 {
		t.Fatalf("/v1/metrics queue-depth = %d, want 2", snap.Gauges["server/queue-depth"])
	}

	close(release)
	for i := 0; i < 2; i++ {
		if st := <-done; st != http.StatusOK {
			t.Fatalf("parked query finished with %d", st)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.mQueueDepth.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue-depth gauge stuck at %d after drain", s.mQueueDepth.Value())
		}
		time.Sleep(time.Millisecond)
	}
}
