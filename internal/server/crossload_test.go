package server

import (
	"path/filepath"
	"slices"
	"testing"

	"influmax/internal/imm"
)

// TestSnapshotCrossLoading pins the cross-load transcode: a snapshot
// written under either labeling can be loaded into a server running the
// other, and every query over the transcoded sketch returns exactly the
// seeds the originating sketch serves. Saving the transcoded sketch again
// must reproduce the canonical encoding for its labeling.
func TestSnapshotCrossLoading(t *testing.T) {
	g := testGraph(19, 180, 1400)
	cfg := testConfig(g)
	key := SketchKey{
		GraphDigest: g.Digest(), Model: cfg.Model, Epsilon: cfg.Epsilon,
		KMax: cfg.KMax, Seed: cfg.Seed,
	}

	for _, from := range []imm.StoreKind{imm.StoreFlat, imm.StoreCoded} {
		for _, to := range []imm.StoreKind{imm.StoreFlat, imm.StoreCoded} {
			built, err := BuildSketch(g, key, cfg.Workers, cfg.Schedule, cfg.Kernel, from, nil)
			if err != nil {
				t.Fatalf("%v->%v: build: %v", from, to, err)
			}
			if built.Store() != from {
				t.Fatalf("%v->%v: built sketch reports store %v", from, to, built.Store())
			}
			path := filepath.Join(t.TempDir(), "sketch.snap")
			if err := built.Save(path); err != nil {
				t.Fatalf("%v->%v: save: %v", from, to, err)
			}
			loaded, err := LoadSketch(path, g, cfg.Workers, to, 0)
			if err != nil {
				t.Fatalf("%v->%v: load: %v", from, to, err)
			}
			if loaded.Store() != to {
				t.Fatalf("%v->%v: loaded sketch reports store %v", from, to, loaded.Store())
			}
			for _, k := range []int{1, 5, cfg.KMax} {
				wantSeeds, wantCov := built.Query(k, cfg.Workers)
				gotSeeds, gotCov := loaded.Query(k, cfg.Workers)
				if !slices.Equal(gotSeeds, wantSeeds) || gotCov != wantCov {
					t.Fatalf("%v->%v k=%d: cross-loaded seeds %v (cov %d) != original %v (cov %d)",
						from, to, k, gotSeeds, gotCov, wantSeeds, wantCov)
				}
			}
			// A directly built sketch of the target kind selects the same
			// seeds too — the transcode is invisible end to end.
			direct, err := BuildSketch(g, key, cfg.Workers, cfg.Schedule, cfg.Kernel, to, nil)
			if err != nil {
				t.Fatalf("%v->%v: direct build: %v", from, to, err)
			}
			wantSeeds, _ := direct.Query(cfg.KMax, cfg.Workers)
			gotSeeds, _ := loaded.Query(cfg.KMax, cfg.Workers)
			if !slices.Equal(gotSeeds, wantSeeds) {
				t.Fatalf("%v->%v: cross-loaded seeds %v != direct %v build %v",
					from, to, gotSeeds, to, wantSeeds)
			}
		}
	}
}

// TestCrossLoadRebuildsRelabeling checks that the coded-direction
// transcode reconstructs the exact frequency table the sampling path would
// have produced: a flat snapshot loaded as coded is byte-identical in
// store content to the directly built coded sketch.
func TestCrossLoadRebuildsRelabeling(t *testing.T) {
	g := testGraph(23, 150, 1100)
	cfg := testConfig(g)
	key := SketchKey{
		GraphDigest: g.Digest(), Model: cfg.Model, Epsilon: cfg.Epsilon,
		KMax: cfg.KMax, Seed: cfg.Seed,
	}
	flat, err := BuildSketch(g, key, cfg.Workers, cfg.Schedule, cfg.Kernel, imm.StoreFlat, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flat.snap")
	if err := flat.Save(path); err != nil {
		t.Fatal(err)
	}
	crossed, err := LoadSketch(path, g, cfg.Workers, imm.StoreCoded, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := BuildSketch(g, key, cfg.Workers, cfg.Schedule, cfg.Kernel, imm.StoreCoded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(crossed.Col.Relabeling().Table(), direct.Col.Relabeling().Table()) {
		t.Fatal("cross-load rebuilt a different relabel table than the sampling path")
	}
	if crossed.Col.Bytes() != direct.Col.Bytes() {
		t.Fatalf("cross-loaded store %d B != directly built %d B", crossed.Col.Bytes(), direct.Col.Bytes())
	}
}
