package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/rrr"
)

// Dynamic-graph serving: the server owns one imm.DynamicSketch, applies
// POST /v1/graph/delta batches to it under dynMu, and republishes an
// immutable query-ready Sketch after each batch. Queries never take the
// mutation lock — they load the latest published view, so a query racing
// a delta sees the sketch as of some fully applied epoch (bounded
// staleness; DESIGN.md §15 gives the freshness contract and the
// rebuild-vs-repair tradeoff).

// initDynamic builds or restores the dynamic sketch and publishes the
// first serving view. Called once from New, before any handler runs.
func (s *Server) initDynamic() error {
	opt := imm.Options{
		K: s.cfg.KMax, Epsilon: s.cfg.Epsilon, Model: s.cfg.Model,
		Workers: s.cfg.Workers, Seed: s.cfg.Seed,
		Schedule: s.cfg.Schedule, Kernel: s.cfg.Kernel,
		Metrics: s.reg,
	}
	if warm := s.cfg.Sketch; warm != nil {
		// Warm restart: decode the persisted store back to the mutable
		// flat arena maintenance needs, then replay the delta log over the
		// base graph to recover the mutated topology.
		flat := rrr.NewCollection(warm.Col.NumVertices())
		var buf []graph.Vertex
		for i := 0; i < warm.Col.Count(); i++ {
			buf = warm.Col.SampleSorted(i, buf[:0])
			flat.Append(buf)
		}
		dyn, err := imm.RestoreDynamicSketch(s.cfg.Graph, opt, s.cfg.WeightPolicy, flat, warm.Theta, warm.Deltas)
		if err != nil {
			return err
		}
		s.dyn = dyn
	} else {
		dyn, _, err := imm.NewDynamicSketch(s.cfg.Graph, opt, s.cfg.WeightPolicy)
		if err != nil {
			return err
		}
		s.mBuilds.Inc()
		s.dyn = dyn
	}
	s.publishDynamicLocked()
	return nil
}

// publishDynamicLocked snapshots the dynamic sketch into an immutable
// Sketch (transcoding into the configured store) and publishes it for
// queries. Caller holds dynMu (or is still inside New).
func (s *Server) publishDynamicLocked() *Sketch {
	flat := s.dyn.Collection()
	var relab *rrr.Relabeling
	if s.cfg.Store == imm.StoreCoded {
		relab = rrr.NewRelabeling(rrr.IncidenceOf(flat, s.cfg.Workers))
	}
	sk := &Sketch{
		Key: s.DefaultKey(),
		Col: rrr.FromCollection(flat, relab),
		// The incidence index is labeling-invariant, so the dynamic
		// sketch's own (rebuilt per batch, then immutable) carries over.
		Idx:        s.dyn.Index(),
		Theta:      s.dyn.Theta(),
		LowerBound: s.dyn.LowerBound(),
		Source:     "dynamic",
		Deltas:     s.dyn.Log(),
		DeltaEpoch: s.dyn.Epoch(),
		DeltaStats: s.dyn.Stats(),
	}
	s.dynSk.Store(sk)
	s.mSketches.Set(1)
	return sk
}

// ServingSketch returns the currently served dynamic sketch view (nil
// outside dynamic mode). The returned sketch is immutable and carries the
// delta log, so it is what a shutdown persists for a warm restart.
func (s *Server) ServingSketch() *Sketch {
	if !s.cfg.Dynamic {
		return nil
	}
	return s.dynSk.Load()
}

// deltaOpRequest is one edge mutation on the wire.
type deltaOpRequest struct {
	Op  string  `json:"op"` // "insert" or "delete"
	Src uint32  `json:"src"`
	Dst uint32  `json:"dst"`
	W   float32 `json:"w,omitempty"`
}

// deltaRequest is the POST /v1/graph/delta body: one ordered batch.
type deltaRequest struct {
	Ops []deltaOpRequest `json:"ops"`
}

// deltaResponse reports one applied batch.
type deltaResponse struct {
	Epoch              uint64 `json:"epoch"`
	Applied            int    `json:"applied"`
	Candidates         int    `json:"candidates"`
	SamplesInvalidated int64  `json:"samplesInvalidated"`
	SamplesExtended    int64  `json:"samplesExtended"`
	Theta              int64  `json:"theta"`
}

// handleDelta applies one mutation batch: decode, validate-or-400
// (rejected batches leave graph and sketch untouched), repair the sketch,
// publish the new serving view, report the repair counters.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Dynamic {
		s.writeError(w, http.StatusBadRequest,
			"server is not in dynamic mode; /v1/graph/delta requires it")
		return
	}
	if s.draining.Load() {
		s.writeBackoff(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req deltaRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch: ops is required")
		return
	}
	if len(req.Ops) > s.cfg.MaxDeltaOps {
		s.writeError(w, http.StatusBadRequest,
			"batch of %d ops exceeds the %d-op limit", len(req.Ops), s.cfg.MaxDeltaOps)
		return
	}
	d := make(graph.Delta, len(req.Ops))
	for i, op := range req.Ops {
		switch op.Op {
		case "insert":
			d[i].Kind = graph.DeltaInsert
		case "delete":
			d[i].Kind = graph.DeltaDelete
		default:
			s.writeError(w, http.StatusBadRequest,
				"ops[%d].op = %q, want \"insert\" or \"delete\"", i, op.Op)
			return
		}
		d[i].Src = graph.Vertex(op.Src)
		d[i].Dst = graph.Vertex(op.Dst)
		d[i].W = op.W
	}

	s.dynMu.Lock()
	res, err := s.dyn.ApplyDelta(d)
	if err != nil {
		s.dynMu.Unlock()
		var de *graph.DeltaError
		if errors.As(err, &de) {
			s.writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			s.writeError(w, http.StatusInternalServerError, "applying delta: %v", err)
		}
		return
	}
	s.publishDynamicLocked()
	s.dynMu.Unlock()
	s.mDeltaBatches.Inc()

	writeJSON(w, http.StatusOK, deltaResponse{
		Epoch:              res.Epoch,
		Applied:            res.Ops,
		Candidates:         res.Candidates,
		SamplesInvalidated: res.SamplesInvalidated,
		SamplesExtended:    res.SamplesExtended,
		Theta:              s.dyn.Theta(),
	})
}
