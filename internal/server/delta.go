package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/rrr"
)

// Dynamic-graph serving: the server owns one imm.DynamicSketch, applies
// POST /v1/graph/delta batches to it under dynMu, and republishes an
// immutable query-ready Sketch after each batch. Queries never take the
// mutation lock — they load the latest published view, so a query racing
// a delta sees the sketch as of some fully applied epoch (bounded
// staleness; DESIGN.md §15 gives the freshness contract and the
// rebuild-vs-repair tradeoff).

// initDynamic builds or restores the dynamic sketch and publishes the
// first serving view. Called once from New, before any handler runs.
func (s *Server) initDynamic() error {
	opt := imm.Options{
		K: s.cfg.KMax, Epsilon: s.cfg.Epsilon, Model: s.cfg.Model,
		Workers: s.cfg.Workers, Seed: s.cfg.Seed,
		Schedule: s.cfg.Schedule, Kernel: s.cfg.Kernel,
		Metrics: s.reg,
	}
	if warm := s.cfg.Sketch; warm != nil {
		// Warm restart: decode the persisted store back to the mutable
		// flat arena maintenance needs, then replay the delta log over the
		// base graph to recover the mutated topology.
		flat := rrr.NewCollection(warm.Col.NumVertices())
		var buf []graph.Vertex
		for i := 0; i < warm.Col.Count(); i++ {
			buf = warm.Col.SampleSorted(i, buf[:0])
			flat.Append(buf)
		}
		dyn, err := imm.RestoreDynamicSketch(s.cfg.Graph, opt, s.cfg.WeightPolicy, flat, warm.Theta, warm.Deltas)
		if err != nil {
			return err
		}
		s.dyn = dyn
	} else {
		dyn, _, err := imm.NewDynamicSketch(s.cfg.Graph, opt, s.cfg.WeightPolicy)
		if err != nil {
			return err
		}
		s.mBuilds.Inc()
		s.dyn = dyn
	}
	s.publishDynamicLocked()
	return nil
}

// publishDynamicLocked snapshots the dynamic sketch into an immutable
// Sketch (transcoding into the configured store) and publishes it for
// queries. Caller holds dynMu (or is still inside New).
func (s *Server) publishDynamicLocked() *Sketch {
	flat := s.dyn.Collection()
	var relab *rrr.Relabeling
	if s.cfg.Store == imm.StoreCoded {
		relab = rrr.NewRelabeling(rrr.IncidenceOf(flat, s.cfg.Workers))
	}
	sk := &Sketch{
		Key: s.DefaultKey(),
		Col: rrr.FromCollection(flat, relab),
		// The incidence index is labeling-invariant, so the dynamic
		// sketch's own (rebuilt per batch, then immutable) carries over.
		Idx:        s.dyn.Index(),
		Theta:      s.dyn.Theta(),
		LowerBound: s.dyn.LowerBound(),
		Source:     "dynamic",
		Deltas:     s.dyn.Log(),
		DeltaEpoch: s.dyn.Epoch(),
		DeltaStats: s.dyn.Stats(),
	}
	s.dynSk.Store(sk)
	s.mSketches.Set(1)
	return sk
}

// ServingSketch returns the currently served dynamic sketch view (nil
// outside dynamic mode). The returned sketch is immutable and carries the
// delta log, so it is what a shutdown persists for a warm restart.
func (s *Server) ServingSketch() *Sketch {
	if !s.cfg.Dynamic {
		return nil
	}
	return s.dynSk.Load()
}

// deltaOpRequest is one edge mutation on the wire.
type deltaOpRequest struct {
	Op  string  `json:"op"` // "insert" or "delete"
	Src uint32  `json:"src"`
	Dst uint32  `json:"dst"`
	W   float32 `json:"w,omitempty"`
}

// deltaRequest is the POST /v1/graph/delta body: one ordered batch.
type deltaRequest struct {
	Ops []deltaOpRequest `json:"ops"`
}

// deltaResponse reports one applied batch. Under sustained write load
// several queued client batches may be folded into one repair pass
// (coalescing); Coalesced then reports how many batches the pass carried,
// and the counters describe the merged batch, not just this client's ops.
type deltaResponse struct {
	Epoch              uint64 `json:"epoch"`
	Applied            int    `json:"applied"`
	Candidates         int    `json:"candidates"`
	SamplesInvalidated int64  `json:"samplesInvalidated"`
	SamplesExtended    int64  `json:"samplesExtended"`
	Theta              int64  `json:"theta"`
	Coalesced          int    `json:"coalesced,omitempty"`
}

// pendingDelta is one decoded mutation batch queued for the repair pass,
// and the channel its handler waits on.
type pendingDelta struct {
	d    graph.Delta
	done chan deltaOutcome
}

type deltaOutcome struct {
	resp deltaResponse
	err  error
}

// handleDelta applies one mutation batch: decode, validate-or-400
// (rejected batches leave graph and sketch untouched), repair the sketch,
// publish the new serving view, report the repair counters.
//
// Batches are coalesced under load: the decoded delta is queued, then
// every handler races for the mutation lock and the winner drains the
// whole queue — batches that piled up while a repair was in flight are
// concatenated in arrival order and folded in with ONE repair pass (one
// epoch, one reweight, one publish), which is what keeps repair cost
// amortized when writers outpace the repair rate. The losers find their
// batch already applied and just report it.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.Dynamic {
		s.writeError(w, http.StatusBadRequest,
			"server is not in dynamic mode; /v1/graph/delta requires it")
		return
	}
	if s.draining.Load() {
		s.writeBackoff(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req deltaRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		s.writeError(w, http.StatusBadRequest, "empty batch: ops is required")
		return
	}
	if len(req.Ops) > s.cfg.MaxDeltaOps {
		s.writeError(w, http.StatusBadRequest,
			"batch of %d ops exceeds the %d-op limit", len(req.Ops), s.cfg.MaxDeltaOps)
		return
	}
	d := make(graph.Delta, len(req.Ops))
	for i, op := range req.Ops {
		switch op.Op {
		case "insert":
			d[i].Kind = graph.DeltaInsert
		case "delete":
			d[i].Kind = graph.DeltaDelete
		default:
			s.writeError(w, http.StatusBadRequest,
				"ops[%d].op = %q, want \"insert\" or \"delete\"", i, op.Op)
			return
		}
		d[i].Src = graph.Vertex(op.Src)
		d[i].Dst = graph.Vertex(op.Dst)
		d[i].W = op.W
	}

	pd := &pendingDelta{d: d, done: make(chan deltaOutcome, 1)}
	s.deltaMu.Lock()
	s.deltaPending = append(s.deltaPending, pd)
	s.deltaMu.Unlock()

	// Race for the mutation lock. By the time this acquisition succeeds,
	// pd has been drained — by us or by whichever handler held the lock
	// while we queued — so the receive below never blocks on an idle
	// server.
	s.dynMu.Lock()
	s.drainDeltasLocked()
	s.dynMu.Unlock()

	out := <-pd.done
	if out.err != nil {
		var de *graph.DeltaError
		if errors.As(out.err, &de) {
			s.writeError(w, http.StatusBadRequest, "%v", out.err)
		} else {
			s.writeError(w, http.StatusInternalServerError, "applying delta: %v", out.err)
		}
		return
	}
	writeJSON(w, http.StatusOK, out.resp)
}

// drainDeltasLocked folds every queued batch into the sketch. A multi-
// batch drain is concatenated into one merged batch and repaired in a
// single pass; if the merged batch fails validation (one client's bad op
// must not poison the others), it falls back to applying each batch
// individually so every client gets its own verdict. Caller holds dynMu.
func (s *Server) drainDeltasLocked() {
	for {
		s.deltaMu.Lock()
		batch := s.deltaPending
		s.deltaPending = nil
		s.deltaMu.Unlock()
		if len(batch) == 0 {
			return
		}
		if len(batch) == 1 {
			s.applyOneLocked(batch[0])
			continue
		}
		total := 0
		for _, pd := range batch {
			total += len(pd.d)
		}
		merged := make(graph.Delta, 0, total)
		for _, pd := range batch {
			merged = append(merged, pd.d...)
		}
		res, err := s.dyn.ApplyDelta(merged)
		if err != nil {
			for _, pd := range batch {
				s.applyOneLocked(pd)
			}
			continue
		}
		s.publishDynamicLocked()
		s.mDeltaBatches.Inc()
		s.mCoalesced.Add(int64(len(batch) - 1))
		resp := deltaResponse{
			Epoch:              res.Epoch,
			Applied:            res.Ops,
			Candidates:         res.Candidates,
			SamplesInvalidated: res.SamplesInvalidated,
			SamplesExtended:    res.SamplesExtended,
			Theta:              s.dyn.Theta(),
			Coalesced:          len(batch),
		}
		for _, pd := range batch {
			pd.done <- deltaOutcome{resp: resp}
		}
	}
}

// applyOneLocked applies a single queued batch and delivers its outcome.
// Caller holds dynMu.
func (s *Server) applyOneLocked(pd *pendingDelta) {
	res, err := s.dyn.ApplyDelta(pd.d)
	if err != nil {
		pd.done <- deltaOutcome{err: err}
		return
	}
	s.publishDynamicLocked()
	s.mDeltaBatches.Inc()
	pd.done <- deltaOutcome{resp: deltaResponse{
		Epoch:              res.Epoch,
		Applied:            res.Ops,
		Candidates:         res.Candidates,
		SamplesInvalidated: res.SamplesInvalidated,
		SamplesExtended:    res.SamplesExtended,
		Theta:              s.dyn.Theta(),
	}}
}
