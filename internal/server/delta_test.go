package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/rrr"
)

// dynConfig is the shared dynamic-mode configuration: the static suite's
// testConfig with dynamic serving switched on.
func dynConfig(g *graph.Graph) Config {
	cfg := testConfig(g)
	cfg.Dynamic = true
	return cfg
}

func postDelta(t *testing.T, client *http.Client, url string, body string) (int, deltaResponse, string) {
	t.Helper()
	resp, err := client.Post(url+"/v1/graph/delta", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/graph/delta: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	var dr deltaResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &dr); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp.StatusCode, dr, string(raw)
}

// opsJSON renders a batch as the /v1/graph/delta wire format.
func opsJSON(d graph.Delta) string {
	var sb strings.Builder
	sb.WriteString(`{"ops":[`)
	for i, op := range d {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"op":%q,"src":%d,"dst":%d,"w":%g}`, op.Kind, op.Src, op.Dst, op.W)
	}
	sb.WriteString("]}")
	return sb.String()
}

// hasEdge reports whether g contains the directed edge u->v.
func hasEdge(g *graph.Graph, u, v graph.Vertex) bool {
	dsts, _ := g.OutNeighbors(u)
	return slices.Contains(dsts, v)
}

// absentEdges returns k distinct directed edges NOT present in g, scanned
// deterministically, so test scripts can insert without tripping the
// edge-already-exists rejection on an unlucky random graph.
func absentEdges(t *testing.T, g *graph.Graph, k int) []graph.DeltaOp {
	t.Helper()
	var ops []graph.DeltaOp
	n := graph.Vertex(g.NumVertices())
	for u := graph.Vertex(0); u < n && len(ops) < k; u++ {
		for v := graph.Vertex(0); v < n && len(ops) < k; v++ {
			if u != v && !hasEdge(g, u, v) {
				ops = append(ops, graph.DeltaOp{Kind: graph.DeltaInsert, Src: u, Dst: v})
			}
		}
	}
	if len(ops) < k {
		t.Fatalf("graph too dense: found %d absent edges, want %d", len(ops), k)
	}
	return ops
}

// coverageOf counts the samples of col containing at least one seed.
func coverageOf(col *rrr.Collection, seeds []graph.Vertex) int64 {
	var covered int64
	for i := 0; i < col.Count(); i++ {
		for _, v := range seeds {
			if col.Contains(i, v) {
				covered++
				break
			}
		}
	}
	return covered
}

// TestDeltaEndpointDifferential is the serving-layer half of the
// differential consistency harness: drive a dynamic server through delta
// batches over HTTP and require (a) lockstep byte-identity with a
// directly maintained imm.DynamicSketch fed the same batches, (b)
// monotonically increasing epochs stamped on both delta and seeds
// responses, and (c) after the full script, served seeds as good as a
// cold IMM rebuild on the mutated graph (within the sketch's epsilon).
func TestDeltaEndpointDifferential(t *testing.T) {
	g := testGraph(7, 200, 1500)
	cfg := dynConfig(g)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	opt := imm.Options{
		K: cfg.KMax, Epsilon: cfg.Epsilon, Model: cfg.Model,
		Workers: cfg.Workers, Seed: cfg.Seed,
	}
	direct, _, err := imm.NewDynamicSketch(g, opt, imm.WeightsExplicit)
	if err != nil {
		t.Fatal(err)
	}

	// Insert only edges absent from the random graph; delete only edges
	// this script inserted, so the script is valid for any testGraph draw.
	abs := absentEdges(t, g, 3)
	for i := range abs {
		abs[i].W = 0.8 + 0.05*float32(i)
	}
	script := []graph.Delta{
		{abs[0], abs[1]},
		{{Kind: graph.DeltaDelete, Src: abs[0].Src, Dst: abs[0].Dst}},
		{abs[2], {Kind: graph.DeltaDelete, Src: abs[1].Src, Dst: abs[1].Dst}},
	}
	var epoch uint64
	for bi, d := range script {
		status, dr, raw := postDelta(t, ts.Client(), ts.URL, opsJSON(d))
		if status != http.StatusOK {
			t.Fatalf("batch %d: status %d: %s", bi, status, raw)
		}
		if dr.Epoch != epoch+1 {
			t.Fatalf("batch %d: epoch %d, want %d (monotonic)", bi, dr.Epoch, epoch+1)
		}
		epoch = dr.Epoch
		want, err := direct.ApplyDelta(d)
		if err != nil {
			t.Fatalf("batch %d: direct apply: %v", bi, err)
		}
		if dr.Applied != want.Ops || dr.Candidates != want.Candidates ||
			dr.SamplesInvalidated != want.SamplesInvalidated || dr.SamplesExtended != want.SamplesExtended {
			t.Fatalf("batch %d: served repair counters %+v != direct %+v", bi, dr, want)
		}

		// Served seeds must equal the direct sketch's at every k probed.
		for _, k := range []int{1, 5} {
			status, _, got := postSeeds(t, ts.Client(), ts.URL, fmt.Sprintf(`{"k":%d}`, k))
			if status != http.StatusOK {
				t.Fatalf("batch %d k=%d: status %d", bi, k, status)
			}
			wantSeeds, _ := direct.Query(k, cfg.Workers)
			if !slices.Equal(got.Seeds, wantSeeds) {
				t.Fatalf("batch %d k=%d: served %v != direct %v", bi, k, got.Seeds, wantSeeds)
			}
			if got.DeltaEpoch != epoch {
				t.Fatalf("batch %d: seeds response epoch %d, want %d", bi, got.DeltaEpoch, epoch)
			}
			if got.Source != "dynamic" {
				t.Fatalf("batch %d: source %q, want dynamic", bi, got.Source)
			}
			if got.Report == nil || got.Report.DeltaEpoch != epoch {
				t.Fatalf("batch %d: report missing delta epoch", bi)
			}
		}
	}

	// Differential gate vs a cold rebuild on the mutated graph.
	status, _, got := postSeeds(t, ts.Client(), ts.URL, fmt.Sprintf(`{"k":%d}`, 5))
	if status != http.StatusOK {
		t.Fatalf("final seeds: status %d", status)
	}
	coldRes, coldCol, coldIdx, err := imm.RunCollect(s.dyn.Graph(), opt)
	if err != nil {
		t.Fatal(err)
	}
	coldSeeds, coldCov := imm.SelectSeedsIndexed(coldCol, coldIdx, 5, cfg.Workers)
	coldFrac := float64(coldCov) / float64(coldCol.Count())
	incCov := float64(coverageOf(coldCol, got.Seeds)) / float64(coldCol.Count())
	if incCov < coldFrac-cfg.Epsilon {
		t.Fatalf("served seeds %v cover %.4f of a cold rebuild's samples, cold greedy %v covers %.4f (eps %.2f, run frac %.4f)",
			got.Seeds, incCov, coldSeeds, coldFrac, cfg.Epsilon, coldRes.CoverageFraction)
	}
}

// TestDeltaEndpointValidation pins the 400 surface: malformed bodies,
// empty and oversized batches, unknown op names, semantic rejections from
// the overlay (which must leave the sketch untouched), the endpoint on a
// non-dynamic server, and per-query overrides in dynamic mode.
func TestDeltaEndpointValidation(t *testing.T) {
	g := testGraph(11, 80, 400)
	cfg := dynConfig(g)
	cfg.MaxDeltaOps = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := []struct {
		name, body string
	}{
		{"malformed json", `{"ops":`},
		{"empty batch", `{"ops":[]}`},
		{"no ops field", `{}`},
		{"oversized batch", opsJSON(graph.Delta{{}, {}, {}})},
		{"unknown op name", `{"ops":[{"op":"upsert","src":0,"dst":1,"w":0.5}]}`},
		{"endpoint out of range", `{"ops":[{"op":"insert","src":0,"dst":99999,"w":0.5}]}`},
		{"weight out of range", `{"ops":[{"op":"insert","src":0,"dst":1,"w":1.5}]}`},
		{"delete missing edge", `{"ops":[{"op":"delete","src":0,"dst":0}]}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			status, _, raw := postDelta(t, ts.Client(), ts.URL, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d (%s), want 400", status, raw)
			}
		})
	}
	// Nothing above may have advanced the sketch.
	if got := s.ServingSketch(); got.DeltaEpoch != 0 || len(got.Deltas) != 0 {
		t.Fatalf("rejected batches advanced the sketch to epoch %d", got.DeltaEpoch)
	}
	if s.dyn.Epoch() != 0 {
		t.Fatalf("rejected batches advanced the dynamic sketch to epoch %d", s.dyn.Epoch())
	}

	t.Run("override rejected in dynamic mode", func(t *testing.T) {
		for _, body := range []string{
			`{"k":2,"model":"LT"}`, `{"k":2,"epsilon":0.3}`, `{"k":2,"seed":7}`,
		} {
			status, _, _ := postSeeds(t, ts.Client(), ts.URL, body)
			if status != http.StatusBadRequest {
				t.Fatalf("override %s: status %d, want 400", body, status)
			}
		}
	})

	t.Run("endpoint requires dynamic mode", func(t *testing.T) {
		static, err := New(testConfig(g))
		if err != nil {
			t.Fatal(err)
		}
		tss := httptest.NewServer(static.Handler())
		defer tss.Close()
		status, _, raw := postDelta(t, tss.Client(), tss.URL, `{"ops":[{"op":"insert","src":0,"dst":1,"w":0.5}]}`)
		if status != http.StatusBadRequest || !strings.Contains(raw, "dynamic") {
			t.Fatalf("status %d (%s), want 400 naming dynamic mode", status, raw)
		}
	})

	t.Run("draining returns 503", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		status, _, _ := postDelta(t, ts.Client(), ts.URL, `{"ops":[{"op":"insert","src":0,"dst":1,"w":0.5}]}`)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503 while draining", status)
		}
	})
}

// TestDeltaWarmRestart pins the persistence contract: the served dynamic
// sketch saves with its delta log, a new dynamic server restores from
// that snapshot to the same epoch, graph and seeds, and a NON-dynamic
// server refuses the snapshot (its samples describe the mutated graph,
// not the base it would serve).
func TestDeltaWarmRestart(t *testing.T) {
	g := testGraph(13, 120, 700)
	cfg := dynConfig(g)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	abs := absentEdges(t, g, 2)
	abs[0].W, abs[1].W = 0.7, 0.6
	script := []graph.Delta{
		{abs[0]},
		{abs[1], {Kind: graph.DeltaDelete, Src: abs[0].Src, Dst: abs[0].Dst}},
	}
	for bi, d := range script {
		if status, _, raw := postDelta(t, ts.Client(), ts.URL, opsJSON(d)); status != http.StatusOK {
			t.Fatalf("batch %d: status %d: %s", bi, status, raw)
		}
	}
	_, _, want := postSeeds(t, ts.Client(), ts.URL, `{"k":4}`)

	path := filepath.Join(t.TempDir(), "dyn.rrs")
	sk := s.ServingSketch()
	if sk.DeltaEpoch != 2 || len(sk.Deltas) != 2 {
		t.Fatalf("serving sketch at epoch %d with %d batches, want 2/2", sk.DeltaEpoch, len(sk.Deltas))
	}
	if err := sk.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadSketch(path, g, cfg.Workers, imm.StoreFlat, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DeltaEpoch != 2 {
		t.Fatalf("loaded sketch at epoch %d, want 2", loaded.DeltaEpoch)
	}

	cfg2 := dynConfig(g)
	cfg2.Sketch = loaded
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	if got, wantD := s2.dyn.Graph().Digest(), s.dyn.Graph().Digest(); got != wantD {
		t.Fatalf("restored graph digest %016x != live %016x", got, wantD)
	}
	status, _, got := postSeeds(t, ts2.Client(), ts2.URL, `{"k":4}`)
	if status != http.StatusOK {
		t.Fatalf("restored seeds: status %d", status)
	}
	if !slices.Equal(got.Seeds, want.Seeds) || got.DeltaEpoch != want.DeltaEpoch {
		t.Fatalf("restored server served %v@%d, live served %v@%d",
			got.Seeds, got.DeltaEpoch, want.Seeds, want.DeltaEpoch)
	}

	// Further identical deltas keep the two servers in lockstep.
	more := absentEdges(t, s.dyn.Graph(), 1)
	more[0].W = 0.5
	extra := graph.Delta{more[0]}
	for _, srv := range []*httptest.Server{ts, ts2} {
		if status, _, raw := postDelta(t, srv.Client(), srv.URL, opsJSON(extra)); status != http.StatusOK {
			t.Fatalf("extra batch: status %d: %s", status, raw)
		}
	}
	_, _, a := postSeeds(t, ts.Client(), ts.URL, `{"k":4}`)
	_, _, b := postSeeds(t, ts2.Client(), ts2.URL, `{"k":4}`)
	if !slices.Equal(a.Seeds, b.Seeds) {
		t.Fatalf("post-restore divergence: %v vs %v", a.Seeds, b.Seeds)
	}

	t.Run("static server refuses delta-log snapshot", func(t *testing.T) {
		cfg3 := testConfig(g)
		cfg3.Sketch = loaded
		if _, err := New(cfg3); err == nil || !strings.Contains(err.Error(), "delta log") {
			t.Fatalf("New = %v, want delta-log rejection", err)
		}
	})
}

// TestDeltaConcurrentQueries races queries against delta batches: every
// query must serve a complete, self-consistent view (seed count as asked,
// an epoch no newer than the batches applied so far) — the bounded
// staleness contract, and the -race seam the CI delta-soak leans on.
func TestDeltaConcurrentQueries(t *testing.T) {
	g := testGraph(17, 150, 900)
	cfg := dynConfig(g)
	cfg.MaxConcurrent = 4
	cfg.MaxQueue = 64
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const batches = 6
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				status, _, got := postSeeds(t, ts.Client(), ts.URL, `{"k":3}`)
				if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
					continue
				}
				if status != http.StatusOK {
					t.Errorf("query status %d", status)
					return
				}
				if len(got.Seeds) != 3 || got.DeltaEpoch > batches {
					t.Errorf("inconsistent view: %d seeds at epoch %d", len(got.Seeds), got.DeltaEpoch)
					return
				}
			}
		}()
	}
	abs := absentEdges(t, g, batches)
	for b := 0; b < batches; b++ {
		abs[b].W = 0.6
		d := graph.Delta{abs[b]}
		if status, dr, raw := postDelta(t, ts.Client(), ts.URL, opsJSON(d)); status != http.StatusOK {
			t.Fatalf("batch %d: status %d: %s", b, status, raw)
		} else if dr.Epoch != uint64(b+1) {
			t.Fatalf("batch %d: epoch %d", b, dr.Epoch)
		}
	}
	close(done)
	wg.Wait()
}
