// Package server is the resident sketch-serving layer (immserve): a
// long-running HTTP service that answers seed-set queries from a
// precomputed RRR sketch instead of re-running the paper's batch pipeline
// per request.
//
// The cost structure that justifies it: sampling theta RRR sets is the
// expensive phase (minutes on the large SNAP analogs — the dominant bars
// of the paper's figures), while greedy selection over a prebuilt inverted
// incidence index is ~100ms even at k in the hundreds. A sketch sized for
// a configured kMax and epsilon therefore turns every query for k <= kMax
// into a sub-second indexed selection. HBMax (Chen et al.) and Wang et
// al.'s space-efficient parallel IM make the same observation — the
// sketch, not selection, dominates memory and time — which is exactly what
// justifies computing it once, compressing it, persisting it, and serving
// from it.
//
// The moving parts:
//
//   - Sketch: an immutable, query-ready unit — a byte-coded
//     CodedCollection of theta samples (identity labeling under
//     imm.StoreFlat, frequency-relabeled under imm.StoreCoded — DESIGN.md
//     §13), its CSR inverted incidence index, and the identifying key
//     (graph digest, model, epsilon, kMax, seed). Queries run
//     imm.SelectSeedsSketch, which works on
//     copy-on-read state (degree-seeded counters, fresh covered bitset),
//     so concurrent queries never mutate the shared sketch.
//   - Snapshots: the rrr snapshot format (versioned, checksummed, chunked
//     I/O, max-size guard) persists a sketch so a restarted server
//     warm-starts in seconds instead of resampling; the graph digest in
//     the meta block keeps a snapshot from being served against the wrong
//     graph.
//   - Cache: sketches are cached by key with single-flight population — a
//     thundering herd of queries for an uncached configuration triggers
//     exactly one sampling run; everyone else waits on it (or times out
//     while it keeps building in the background).
//   - Admission control: a bounded worker pool with a queue-depth limit.
//     Past the limit the server answers 429 with Retry-After instead of
//     queueing unboundedly; per-request timeouts bound the wait, and
//     Shutdown drains in-flight queries before returning.
//   - Operations: /healthz (503 while draining), /v1/metrics (the
//     metrics.Registry snapshot as JSON), and opt-in net/http/pprof.
package server
