package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"

	"influmax/internal/graph"
)

// FuzzSeedsRequest fuzzes the extended /v1/seeds and /v1/spread JSON
// decoders end to end through the real handler: any body — however
// malformed, hostile or oversized — must produce a well-formed response
// (200 with valid JSON, or 400 with a JSON error), never a panic, and
// never disturb the resident sketch (a canonical plain query must answer
// byte-identical seeds after every fuzzed request).
func FuzzSeedsRequest(f *testing.F) {
	f.Add(false, []byte(`{"k":1}`))
	f.Add(false, []byte(`{"k":3,"budget":2.5}`))
	f.Add(false, []byte(`{"k":3,"costs":[1,2],"budget":4}`))
	f.Add(false, []byte(`{"k":3,"audience":[0,3,6],"blocked":[1]}`))
	f.Add(false, []byte(`{"k":3,"budget":0,"audience":[],"blocked":[]}`))
	f.Add(false, []byte(`{"k":-1,"costs":"x"}`))
	f.Add(true, []byte(`{"seeds":[0,1,2]}`))
	f.Add(true, []byte(`{"seeds":[5],"audience":[0,2,4]}`))
	f.Add(true, []byte(`{"seeds":[],"audience":[4294967295]}`))
	f.Add(true, []byte(`{"seeds"`))

	g := testGraph(3, 40, 220)
	cfg := testConfig(g)
	cfg.KMax = 10
	s, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Prewarm(context.Background()); err != nil {
		f.Fatal(err)
	}
	h := s.Handler()
	canonical := func() []graph.Vertex {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/seeds", bytes.NewReader([]byte(`{"k":2}`))))
		var sr seedsResponse
		if rec.Code != http.StatusOK || json.Unmarshal(rec.Body.Bytes(), &sr) != nil {
			return nil
		}
		return sr.Seeds
	}
	wantSeeds := canonical()
	if wantSeeds == nil {
		f.Fatal("canonical query failed at setup")
	}

	f.Fuzz(func(t *testing.T, spread bool, body []byte) {
		path := "/v1/seeds"
		if spread {
			path = "/v1/spread"
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", path, bytes.NewReader(body)))
		switch rec.Code {
		case http.StatusOK:
			if !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("%s: 200 with invalid JSON: %q", path, rec.Body.Bytes())
			}
		case http.StatusBadRequest:
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("%s: 400 without a JSON error: %q", path, rec.Body.Bytes())
			}
		default:
			t.Fatalf("%s: status %d for body %q, want 200 or 400", path, rec.Code, body)
		}
		if got := canonical(); !slices.Equal(got, wantSeeds) {
			t.Fatalf("sketch mutated: canonical seeds %v != %v after body %q", got, wantSeeds, body)
		}
	})
}
