package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"

	"influmax/internal/cluster"
	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
)

// queryTestServer builds a prewarmed server plus reference closures over
// the single-process store at the same configuration: ref answers any
// query, spreadRef is the exact CoverageOf estimator, and count is the
// store's sample count.
func queryTestServer(t *testing.T, cfg Config) (ts *httptest.Server, ref func(imm.Query) *imm.QueryResult, spreadRef func(seeds, audience []graph.Vertex) (int64, int64), count int) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts = httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	_, col, idx, err := imm.RunCollect(cfg.Graph, imm.Options{
		K: cfg.KMax, Epsilon: cfg.Epsilon, Model: cfg.Model,
		Workers: cfg.Workers, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	roots := imm.RootsRange(cfg.Seed, col.Count(), cfg.Graph.NumVertices(), cfg.Workers)
	ref = func(q imm.Query) *imm.QueryResult {
		qr, err := imm.SelectQueryIndexed(col, idx, roots, q, cfg.Workers)
		if err != nil {
			t.Fatalf("reference query: %v", err)
		}
		return qr
	}
	spreadRef = func(seeds, audience []graph.Vertex) (int64, int64) {
		covered, eligible, err := imm.CoverageOf(col.Count(), idx, roots, seeds, audience)
		if err != nil {
			t.Fatalf("reference spread: %v", err)
		}
		return covered, eligible
	}
	return ts, ref, spreadRef, col.Count()
}

// TestSeedsQueryModes drives the extended /v1/seeds fields end to end:
// every query mode served over HTTP must match the single-process
// SelectQueryIndexed answer, the mode extras (gains, eligible,
// spentBudget) must be present exactly when the query is non-plain, and
// the per-mode counters must tick.
func TestSeedsQueryModes(t *testing.T) {
	g := testGraph(7, 120, 900)
	cfg := testConfig(g)
	ts, ref, _, _ := queryTestServer(t, cfg)
	n := g.NumVertices()

	costs := make([]float64, n)
	costJSON := make([]string, n)
	for v := range costs {
		costs[v] = float64(1 + (v*2654435761)%4)
		costJSON[v] = fmt.Sprintf("%g", costs[v])
	}
	var audience []graph.Vertex
	for v := 0; v < n; v += 3 {
		audience = append(audience, graph.Vertex(v))
	}
	audJSON, _ := json.Marshal(audience)
	plain := ref(imm.Query{K: 5})
	blocked := plain.Seeds[:2]
	blockedJSON, _ := json.Marshal(blocked)

	cases := []struct {
		name string
		body string
		q    imm.Query
	}{
		{"budgeted", fmt.Sprintf(`{"k":5,"costs":[%s],"budget":6}`, strings.Join(costJSON, ",")),
			imm.Query{K: 5, Costs: costs, Budget: 6}},
		{"unit-budget", `{"k":5,"budget":3}`, imm.Query{K: 5, Budget: 3}},
		{"targeted", fmt.Sprintf(`{"k":5,"audience":%s}`, audJSON), imm.Query{K: 5, Audience: audience}},
		{"blocked", fmt.Sprintf(`{"k":5,"blocked":%s}`, blockedJSON), imm.Query{K: 5, Blocked: blocked}},
	}
	for _, tc := range cases {
		status, _, got := postSeeds(t, ts.Client(), ts.URL, tc.body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", tc.name, status)
		}
		want := ref(tc.q)
		if !slices.Equal(got.Seeds, want.Seeds) || !slices.Equal(got.Gains, want.Gains) {
			t.Fatalf("%s: served (%v, %v) != reference (%v, %v)",
				tc.name, got.Seeds, got.Gains, want.Seeds, want.Gains)
		}
		if got.Eligible != want.Eligible || got.SpentBudget != want.SpentBudget {
			t.Fatalf("%s: eligible/spent (%d, %v) != (%d, %v)",
				tc.name, got.Eligible, got.SpentBudget, want.Eligible, want.SpentBudget)
		}
	}

	// A plain request keeps the historical response shape: no gains,
	// eligible or spentBudget keys at all.
	resp, err := ts.Client().Post(ts.URL+"/v1/seeds", "application/json", strings.NewReader(`{"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, key := range []string{`"gains"`, `"eligible"`, `"spentBudget"`} {
		if strings.Contains(string(raw), key) {
			t.Fatalf("plain response leaks %s: %s", key, raw)
		}
	}

	// The per-mode counters observed every non-plain query above.
	mr, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mr.Body.Close()
	wantCounters := map[string]int64{
		"server/query-budgeted": 2,
		"server/query-targeted": 1,
		"server/query-blocked":  1,
	}
	for name, want := range wantCounters {
		if got := snap.Counters[name]; got != want {
			t.Fatalf("counter %s = %d, want %d", name, got, want)
		}
	}

	// Mode validation errors answer 400.
	for _, body := range []string{
		`{"k":5,"costs":[1,2]}`,             // costs without budget / wrong length
		`{"k":5,"budget":-2}`,               // negative budget
		`{"k":5,"audience":[100000]}`,       // audience out of range
		`{"k":5,"blocked":[100000]}`,        // blocked out of range
		`{"k":5,"budget":1e999}`,            // infinite budget (json overflow)
		`{"k":5,"costs":"many","budget":1}`, // type mismatch
	} {
		status, _, _ := postSeeds(t, ts.Client(), ts.URL, body)
		if status != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, status)
		}
	}
}

// TestSeedsQueryDefaults: -budget/-audience/-blocked server defaults are
// inherited by requests that omit the fields and cleared by explicit
// empty values.
func TestSeedsQueryDefaults(t *testing.T) {
	g := testGraph(11, 90, 600)
	cfg := testConfig(g)
	var audience []graph.Vertex
	for v := 0; v < g.NumVertices(); v += 2 {
		audience = append(audience, graph.Vertex(v))
	}
	cfg.DefaultBudget = 4
	cfg.DefaultAudience = audience
	ts, ref, _, _ := queryTestServer(t, cfg)

	// Omitting the fields inherits both defaults.
	status, _, got := postSeeds(t, ts.Client(), ts.URL, `{"k":4}`)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	want := ref(imm.Query{K: 4, Budget: 4, Audience: audience})
	if !slices.Equal(got.Seeds, want.Seeds) || got.SpentBudget != want.SpentBudget || got.Eligible != want.Eligible {
		t.Fatalf("defaults not inherited: (%v, %v, %d) != (%v, %v, %d)",
			got.Seeds, got.SpentBudget, got.Eligible, want.Seeds, want.SpentBudget, want.Eligible)
	}

	// Explicit zero budget and empty audience clear the defaults — the
	// query is plain again and byte-identical to the no-defaults server.
	status, _, got = postSeeds(t, ts.Client(), ts.URL, `{"k":4,"budget":0,"audience":[]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	wantPlain := ref(imm.Query{K: 4})
	if !slices.Equal(got.Seeds, wantPlain.Seeds) {
		t.Fatalf("cleared defaults: %v != plain %v", got.Seeds, wantPlain.Seeds)
	}
}

// TestSpreadEndpoint pins POST /v1/spread against the exposed CoverageOf
// estimator, with and without an audience filter, plus its error paths.
func TestSpreadEndpoint(t *testing.T) {
	g := testGraph(13, 100, 700)
	cfg := testConfig(g)
	ts, ref, spreadRef, count := queryTestServer(t, cfg)
	n := g.NumVertices()

	plain := ref(imm.Query{K: 5})
	var audience []graph.Vertex
	for v := 0; v < n; v += 3 {
		audience = append(audience, graph.Vertex(v))
	}

	post := func(body string) (int, spreadResponse) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/spread", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr spreadResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, sr
	}

	seedsJSON, _ := json.Marshal(plain.Seeds)
	audJSON, _ := json.Marshal(audience)
	for _, tc := range []struct {
		name     string
		body     string
		audience []graph.Vertex
	}{
		{"unrestricted", fmt.Sprintf(`{"seeds":%s}`, seedsJSON), nil},
		{"targeted", fmt.Sprintf(`{"seeds":%s,"audience":%s}`, seedsJSON, audJSON), audience},
	} {
		status, sr := post(tc.body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", tc.name, status)
		}
		wantCovered, wantEligible := spreadRef(plain.Seeds, tc.audience)
		if sr.Covered != wantCovered || sr.Eligible != wantEligible {
			t.Fatalf("%s: (%d, %d) != CoverageOf (%d, %d)",
				tc.name, sr.Covered, sr.Eligible, wantCovered, wantEligible)
		}
		wantFrac := float64(wantCovered) / float64(count)
		if sr.CoverageFraction != wantFrac || sr.EstimatedSpread != wantFrac*float64(n) {
			t.Fatalf("%s: fraction/estimate (%v, %v) != (%v, %v)",
				tc.name, sr.CoverageFraction, sr.EstimatedSpread, wantFrac, wantFrac*float64(n))
		}
		if tc.audience == nil && sr.Covered != plain.Covered {
			t.Fatalf("spread of the selected seeds %d != selection coverage %d", sr.Covered, plain.Covered)
		}
	}

	for _, body := range []string{
		`{"seeds":`,                      // malformed JSON
		`{}`,                             // no seeds
		`{"seeds":[]}`,                   // empty seeds
		`{"seeds":[100000]}`,             // seed out of range
		`{"seeds":[1],"audience":[1e9]}`, // audience out of range
		`{"seeds":[1],"epsilon":7}`,      // invalid epsilon override
	} {
		if status, _ := post(body); status != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, status)
		}
	}
}

// TestSpreadShardModeRejected: shard replicas refuse /v1/spread the same
// way they refuse /v1/seeds — the router owns fleet-wide estimates.
func TestSpreadShardModeRejected(t *testing.T) {
	g := testGraph(17, 60, 400)
	shards, err := cluster.BuildShards(g, cluster.BuildOptions{
		K: 5, Epsilon: 0.5, Model: diffuse.IC, Seed: 3, Workers: 2, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(g)
	cfg.ClusterShard = shards[0]
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/spread", "application/json", strings.NewReader(`{"seeds":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shard-mode spread: status %d, want 400", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "cluster router") {
		t.Fatalf("shard-mode spread error does not point at the router: %s", raw)
	}
}
