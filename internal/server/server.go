package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"influmax/internal/cluster"
	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/metrics"
	"influmax/internal/par"
)

// Config configures a seed-serving Server. Graph, KMax and Epsilon are
// required; everything else has serving-grade defaults.
type Config struct {
	// Graph is the loaded graph all sketches are sampled from.
	Graph *graph.Graph
	// Model is the default diffusion model for queries that do not name
	// one.
	Model diffuse.Model
	// Epsilon is the default accuracy parameter sketches are sized for.
	Epsilon float64
	// KMax bounds the seed-set size a sketch serves: queries for any
	// k <= KMax run over the same theta samples.
	KMax int
	// Seed is the default sampling seed.
	Seed uint64
	// Workers is the thread count for sampling and per-query selection
	// (<= 0 uses all cores).
	Workers int
	// Schedule is the sampling-loop schedule for sketch builds (dynamic
	// work-stealing by default; sketch content does not depend on it).
	Schedule imm.Schedule
	// Kernel is the sampling kernel for sketch builds (fused CSR frontier
	// batches by default; sketch content does not depend on it — the two
	// kernels are byte-identical in the per-sample RNG mode builds use).
	Kernel imm.Kernel
	// Store is the RRR store kind sketches are built and served under
	// (flat identity labeling by default; imm.StoreCoded serves from the
	// frequency-relabeled byte-coded store — same query seeds, >= 3x
	// smaller resident sketch).
	Store imm.StoreKind
	// MaxConcurrent bounds queries executing at once (the worker pool;
	// <= 0 defaults to 2).
	MaxConcurrent int
	// MaxQueue bounds queries waiting for a pool slot; one more query past
	// MaxConcurrent+MaxQueue is answered 429 + Retry-After instead of
	// queueing (<= 0 defaults to 16).
	MaxQueue int
	// QueryTimeout bounds one request's total wait: pool admission plus
	// sketch population. A query that cannot start in time gets 503 +
	// Retry-After while any build it triggered keeps running (<= 0
	// defaults to 60s).
	QueryTimeout time.Duration
	// RetryAfter is the hint stamped on 429/503 responses (<= 0 defaults
	// to 1s).
	RetryAfter time.Duration
	// MaxSketches bounds resident sketches across distinct query
	// configurations; the oldest finished sketch is evicted past it
	// (<= 0 defaults to 4).
	MaxSketches int
	// Metrics receives server and engine instrumentation; a fresh registry
	// is created when nil (exposed either way at /v1/metrics).
	Metrics *metrics.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Sketch, when non-nil, is a prebuilt (typically snapshot-loaded)
	// sketch installed at startup — the warm start. Its graph digest must
	// match Graph. In dynamic mode the sketch's delta log is replayed to
	// restore the mutated graph; outside it, a sketch carrying a delta log
	// is rejected (its samples no longer describe Graph).
	Sketch *Sketch
	// Dynamic enables dynamic-graph mode: the server owns one incremental
	// sketch over Graph, serves every query from it, and accepts edge
	// mutations at POST /v1/graph/delta. Per-query model/epsilon/seed
	// overrides are rejected in this mode — there is one sketch, tracking
	// one configuration (see DESIGN.md §15).
	Dynamic bool
	// WeightPolicy tells dynamic mode how edge weights are re-derived
	// after each mutation batch (imm.WeightsExplicit by default;
	// imm.WeightsWC recomputes weighted-cascade weights from the new
	// in-degrees).
	WeightPolicy imm.WeightPolicy
	// MaxDeltaOps bounds the edge ops accepted in one delta batch (<= 0
	// defaults to 4096).
	MaxDeltaOps int
	// DefaultBudget, DefaultAudience and DefaultBlocked are query-shape
	// defaults (the -budget/-audience/-blocked immserve flags): a
	// /v1/seeds request that leaves the corresponding field absent
	// inherits them. Zero/nil means plain top-k, exactly as before.
	DefaultBudget   float64
	DefaultAudience []graph.Vertex
	DefaultBlocked  []graph.Vertex
	// ClusterShard, when non-nil, runs this server as one shard replica of
	// a router-fronted fleet (internal/cluster): the shard API is mounted
	// (POST /v1/shard/op, GET /v1/shard/info, GET /v1/snapshot for peer
	// bootstrap) and POST /v1/seeds is rejected with a pointer to the
	// router — a shard holds a slice of the theta samples, so answering
	// seed queries locally would be silently wrong. The shard's graph
	// digest must match Graph; Dynamic mode and shard mode are mutually
	// exclusive.
	ClusterShard *cluster.Shard
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = par.DefaultWorkers()
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxSketches <= 0 {
		c.MaxSketches = 4
	}
	if c.MaxDeltaOps <= 0 {
		c.MaxDeltaOps = 4096
	}
	return c
}

// Server is the resident sketch-serving subsystem. Create one with New,
// mount Handler on any mux or listener (or use Start), and stop it with
// Shutdown, which drains in-flight queries.
type Server struct {
	cfg    Config
	digest uint64
	reg    *metrics.Registry
	cache  *sketchCache

	// Admission: admitted counts running+waiting queries (bounded by
	// admitLimit); running is the worker pool.
	admitLimit int64
	admitted   atomic.Int64
	running    chan struct{}

	draining atomic.Bool
	mux      *http.ServeMux
	httpSrv  *http.Server

	// Dynamic mode: dynMu serializes mutations to dyn; dynSk holds the
	// immutable query-ready view, republished after every batch, that
	// queries load lock-free. A query therefore sees the sketch as of
	// some fully applied epoch — never a half-applied batch (the bounded
	// staleness contract).
	dynMu sync.Mutex
	dyn   *imm.DynamicSketch
	dynSk atomic.Pointer[Sketch]

	// Delta coalescing: handlers enqueue decoded batches under deltaMu,
	// then race for dynMu; whoever wins drains the whole queue in one
	// repair pass (see drainDeltasLocked).
	deltaMu      sync.Mutex
	deltaPending []*pendingDelta

	mQueries, mRejected, mTimeouts, mErrors, mBuilds, mDeltaBatches, mCoalesced *metrics.Counter
	mQueryBudgeted, mQueryTargeted, mQueryBlocked, mQuerySpread                 *metrics.Counter
	mInflight, mSketches, mQueueDepth                                           *metrics.Gauge
	mLatency                                                                    *metrics.Histogram

	// testQueryHook, when set, runs inside the seeds handler after pool
	// admission — the seam load and drain tests use to hold a query in
	// flight deterministically.
	testQueryHook func()
}

// New validates cfg, prewarms the default sketch slot if cfg.Sketch is
// given, and returns a ready Server (no listener yet).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Graph == nil {
		return nil, errors.New("server: Config.Graph is required")
	}
	n := cfg.Graph.NumVertices()
	if n < 2 {
		return nil, errors.New("server: graph must have at least 2 vertices")
	}
	if cfg.KMax < 1 || cfg.KMax > n {
		return nil, fmt.Errorf("server: kMax = %d, want 1 <= kMax <= %d", cfg.KMax, n)
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		return nil, fmt.Errorf("server: epsilon = %v, want 0 < eps < 1", cfg.Epsilon)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		cfg:            cfg,
		digest:         cfg.Graph.Digest(),
		reg:            reg,
		cache:          newSketchCache(cfg.MaxSketches),
		admitLimit:     int64(cfg.MaxConcurrent + cfg.MaxQueue),
		running:        make(chan struct{}, cfg.MaxConcurrent),
		mQueries:       reg.Counter("server/queries"),
		mDeltaBatches:  reg.Counter("server/delta-batches"),
		mCoalesced:     reg.Counter("server/delta-coalesced"),
		mRejected:      reg.Counter("server/rejected"),
		mTimeouts:      reg.Counter("server/timeouts"),
		mErrors:        reg.Counter("server/errors"),
		mBuilds:        reg.Counter("server/sketch-builds"),
		mQueryBudgeted: reg.Counter("server/query-budgeted"),
		mQueryTargeted: reg.Counter("server/query-targeted"),
		mQueryBlocked:  reg.Counter("server/query-blocked"),
		mQuerySpread:   reg.Counter("server/query-spread"),
		mInflight:      reg.Gauge("server/inflight"),
		mSketches:      reg.Gauge("server/sketches"),
		mQueueDepth:    reg.Gauge("server/queue-depth"),
		mLatency:       reg.Histogram("server/query-us"),
	}
	if cfg.Sketch != nil && cfg.Sketch.Key.GraphDigest != s.digest {
		return nil, fmt.Errorf("server: provided sketch is for graph %016x, loaded graph is %016x",
			cfg.Sketch.Key.GraphDigest, s.digest)
	}
	if sh := cfg.ClusterShard; sh != nil {
		if cfg.Dynamic {
			return nil, errors.New("server: shard mode and dynamic mode are mutually exclusive (shards serve static sketches)")
		}
		if sh.Meta.GraphDigest != s.digest {
			return nil, fmt.Errorf("server: shard was sampled from graph %016x, loaded graph is %016x",
				sh.Meta.GraphDigest, s.digest)
		}
	}
	if cfg.Dynamic {
		if err := s.initDynamic(); err != nil {
			return nil, err
		}
	} else if cfg.Sketch != nil {
		if len(cfg.Sketch.Deltas) > 0 {
			return nil, errors.New("server: snapshot carries a delta log; its samples describe the mutated graph, serve it with Dynamic mode")
		}
		s.cache.put(cfg.Sketch)
		s.mSketches.Set(int64(s.cache.len()))
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/seeds", s.handleSeeds)
	s.mux.HandleFunc("POST /v1/spread", s.handleSpread)
	s.mux.HandleFunc("POST /v1/graph/delta", s.handleDelta)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	if sh := cfg.ClusterShard; sh != nil {
		s.mux.HandleFunc("POST "+cluster.ShardOpPath, sh.ServeOp)
		s.mux.HandleFunc("GET /v1/shard/info", sh.ServeInfo)
		s.mux.HandleFunc("GET /v1/snapshot", sh.ServeSnapshot)
	}
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the server's HTTP handler (for mounting under httptest
// or an external mux/listener).
func (s *Server) Handler() http.Handler { return s.mux }

// DefaultKey is the sketch key of the server's configured defaults.
func (s *Server) DefaultKey() SketchKey {
	return SketchKey{
		GraphDigest: s.digest,
		Model:       s.cfg.Model,
		Epsilon:     s.cfg.Epsilon,
		KMax:        s.cfg.KMax,
		Seed:        s.cfg.Seed,
	}
}

// Prewarm synchronously populates the default sketch (sampling if no
// snapshot was installed), so the first query does not pay the build. A
// dynamic server is built warm by New; Prewarm is then a no-op.
func (s *Server) Prewarm(ctx context.Context) error {
	if s.cfg.Dynamic {
		return nil
	}
	_, _, err := s.sketchFor(ctx, s.DefaultKey())
	return err
}

// Start listens on addr and serves until Shutdown; it returns the bound
// address (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown drains the server: health flips to 503 (so load balancers stop
// routing), no new queries are admitted, and in-flight queries run to
// completion bounded by ctx. After a Start, the listener closes too.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.httpSrv != nil {
		return s.httpSrv.Shutdown(ctx)
	}
	// Handler-only mode (tests, embedding): wait for in-flight queries.
	for s.admitted.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// seedsRequest is the POST /v1/seeds body. k is required; the rest
// defaults to the server configuration (overriding any of them selects —
// and, on first use, populates — a different sketch).
type seedsRequest struct {
	K       int      `json:"k"`
	Epsilon *float64 `json:"epsilon,omitempty"`
	Model   *string  `json:"model,omitempty"`
	Seed    *uint64  `json:"seed,omitempty"`
	// Query-diversity fields (DESIGN.md §17), all optional. Costs
	// (per-vertex, length n) with Budget select cost-aware greedy (Budget
	// alone implies unit costs); Audience restricts coverage to samples
	// rooted in it; Blocked excludes a rival's seeds and their coverage.
	// Absent fields inherit the server's Default* configuration; an
	// all-plain request keeps the exact historical response shape.
	Costs    []float64       `json:"costs,omitempty"`
	Budget   *float64        `json:"budget,omitempty"`
	Audience *[]graph.Vertex `json:"audience,omitempty"`
	Blocked  *[]graph.Vertex `json:"blocked,omitempty"`
}

// seedsResponse is the POST /v1/seeds reply.
type seedsResponse struct {
	K                int                `json:"k"`
	KMax             int                `json:"kMax"`
	Seeds            []graph.Vertex     `json:"seeds"`
	CoverageFraction float64            `json:"coverageFraction"`
	EstimatedSpread  float64            `json:"estimatedSpread"`
	Theta            int64              `json:"theta"`
	Cached           bool               `json:"cached"`
	Source           string             `json:"source"`
	DeltaEpoch       uint64             `json:"deltaEpoch,omitempty"`
	Report           *metrics.RunReport `json:"report"`
	// Query-diversity extras, present only on non-plain queries so plain
	// responses keep their exact historical shape.
	Gains       []int64 `json:"gains,omitempty"`
	Eligible    int64   `json:"eligible,omitempty"`
	SpentBudget float64 `json:"spentBudget,omitempty"`
}

// spreadRequest is the POST /v1/spread body: estimate the influence of a
// caller-supplied seed set over the resident sketch's samples, optionally
// restricted to audience-rooted samples. The epsilon/model/seed overrides
// select (and on first use populate) a sketch exactly like /v1/seeds.
type spreadRequest struct {
	Seeds    []graph.Vertex `json:"seeds"`
	Audience []graph.Vertex `json:"audience,omitempty"`
	Epsilon  *float64       `json:"epsilon,omitempty"`
	Model    *string        `json:"model,omitempty"`
	Seed     *uint64        `json:"seed,omitempty"`
}

// spreadResponse is the POST /v1/spread reply. EstimatedSpread is
// n * covered / theta — with an audience, the expected number of audience
// members influenced.
type spreadResponse struct {
	Covered          int64   `json:"covered"`
	Eligible         int64   `json:"eligible"`
	CoverageFraction float64 `json:"coverageFraction"`
	EstimatedSpread  float64 `json:"estimatedSpread"`
	Theta            int64   `json:"theta"`
	Cached           bool    `json:"cached"`
	Source           string  `json:"source"`
	DeltaEpoch       uint64  `json:"deltaEpoch,omitempty"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	if status >= 500 {
		s.mErrors.Inc()
	}
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeBackoff answers an overload/timeout condition with the Retry-After
// hint.
func (s *Server) writeBackoff(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// sketchFor resolves (building at most once, concurrently with other
// keys) the sketch for key.
func (s *Server) sketchFor(ctx context.Context, key SketchKey) (*Sketch, bool, error) {
	sk, hit, err := s.cache.get(ctx, key, func() (*Sketch, error) {
		s.mBuilds.Inc()
		return BuildSketch(s.cfg.Graph, key, s.cfg.Workers, s.cfg.Schedule, s.cfg.Kernel, s.cfg.Store, s.reg)
	})
	s.mSketches.Set(int64(s.cache.len()))
	return sk, hit, err
}

// handleSeeds is the query path: admission control, sketch resolution
// (cache + single-flight), copy-on-read indexed selection, report.
func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeBackoff(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if sh := s.cfg.ClusterShard; sh != nil {
		s.writeError(w, http.StatusBadRequest,
			"this replica serves shard %d of %d; POST /v1/seeds to the cluster router instead",
			sh.ShardIdx, sh.ShardCount)
		return
	}
	// Admission: bounded queue depth. Everything admitted past here is
	// counted until the handler returns, so Shutdown can drain. The
	// queue-depth gauge tracks admitted (running + waiting) so saturation
	// is visible in /v1/metrics before 429s start.
	if adm := s.admitted.Add(1); adm > s.admitLimit {
		s.mQueueDepth.Set(s.admitted.Add(-1))
		s.mRejected.Inc()
		s.writeBackoff(w, http.StatusTooManyRequests,
			"saturated: %d queries admitted (limit %d running + %d queued)",
			s.admitLimit, s.cfg.MaxConcurrent, s.cfg.MaxQueue)
		return
	} else {
		s.mQueueDepth.Set(adm)
	}
	defer func() { s.mQueueDepth.Set(s.admitted.Add(-1)) }()

	var req seedsRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	key := s.DefaultKey()
	if s.cfg.Dynamic && (req.Model != nil || req.Epsilon != nil || req.Seed != nil) {
		s.writeError(w, http.StatusBadRequest,
			"dynamic mode serves one sketch configuration; model/epsilon/seed overrides are not available")
		return
	}
	if req.Model != nil {
		m, err := diffuse.ParseModel(*req.Model)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		key.Model = m
	}
	if req.Epsilon != nil {
		if *req.Epsilon <= 0 || *req.Epsilon >= 1 {
			s.writeError(w, http.StatusBadRequest, "epsilon = %v, want 0 < eps < 1", *req.Epsilon)
			return
		}
		key.Epsilon = *req.Epsilon
	}
	if req.Seed != nil {
		key.Seed = *req.Seed
	}
	if req.K < 1 || req.K > key.KMax {
		s.writeError(w, http.StatusBadRequest, "k = %d, want 1 <= k <= kMax = %d", req.K, key.KMax)
		return
	}
	// Resolve the query shape: explicit fields win, absent ones inherit
	// the server defaults (an explicit empty value clears a default).
	q := imm.Query{K: req.K, Costs: req.Costs, Budget: s.cfg.DefaultBudget,
		Audience: s.cfg.DefaultAudience, Blocked: s.cfg.DefaultBlocked}
	if req.Budget != nil {
		q.Budget = *req.Budget
	}
	if req.Audience != nil {
		q.Audience = *req.Audience
	}
	if req.Blocked != nil {
		q.Blocked = *req.Blocked
	}
	if !q.Plain() {
		if err := q.Validate(s.cfg.Graph.NumVertices()); err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()

	// Worker pool: run now or wait (bounded by the timeout and by the
	// client hanging up).
	select {
	case s.running <- struct{}{}:
		defer func() { <-s.running }()
	case <-ctx.Done():
		s.mTimeouts.Inc()
		s.writeBackoff(w, http.StatusServiceUnavailable, "queue wait exceeded: %v", ctx.Err())
		return
	}
	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)
	if s.testQueryHook != nil {
		s.testQueryHook()
	}

	var (
		sk  *Sketch
		hit bool
		err error
	)
	if s.cfg.Dynamic {
		// Lock-free load of the latest published epoch.
		sk, hit = s.dynSk.Load(), true
	} else {
		sk, hit, err = s.sketchFor(ctx, key)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.mTimeouts.Inc()
			s.writeBackoff(w, http.StatusServiceUnavailable,
				"sketch for (%s) still building: %v", key, err)
			return
		}
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "building sketch: %v", err)
			return
		}
	}

	start := time.Now()
	var (
		seeds   []graph.Vertex
		covered int64
		qr      *imm.QueryResult
	)
	if q.Plain() {
		seeds, covered = sk.Query(req.K, s.cfg.Workers)
	} else {
		qr, err = sk.QueryEx(q, s.cfg.Workers)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		seeds, covered = qr.Seeds, qr.Covered
		if q.Budgeted() {
			s.mQueryBudgeted.Inc()
		}
		if len(q.Audience) > 0 {
			s.mQueryTargeted.Inc()
		}
		if len(q.Blocked) > 0 {
			s.mQueryBlocked.Inc()
		}
	}
	dur := time.Since(start)
	s.mQueries.Inc()
	s.mLatency.Observe(dur.Microseconds())

	rep := sk.report(req.K, s.cfg.Workers, dur, seeds, covered)
	resp := seedsResponse{
		K:                req.K,
		KMax:             sk.Key.KMax,
		Seeds:            seeds,
		CoverageFraction: rep.CoverageFraction,
		EstimatedSpread:  rep.EstimatedSpread,
		Theta:            sk.Theta,
		Cached:           hit,
		Source:           sk.Source,
		DeltaEpoch:       sk.DeltaEpoch,
		Report:           rep,
	}
	if qr != nil {
		resp.Gains = qr.Gains
		resp.Eligible = qr.Eligible
		resp.SpentBudget = qr.SpentBudget
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSpread is the seed-set estimation path: same admission control
// and sketch resolution as /v1/seeds, then a stateless coverage count
// over the resident samples (no greedy, no purging).
func (s *Server) handleSpread(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeBackoff(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if sh := s.cfg.ClusterShard; sh != nil {
		s.writeError(w, http.StatusBadRequest,
			"this replica serves shard %d of %d; POST /v1/spread to the cluster router instead",
			sh.ShardIdx, sh.ShardCount)
		return
	}
	if adm := s.admitted.Add(1); adm > s.admitLimit {
		s.mQueueDepth.Set(s.admitted.Add(-1))
		s.mRejected.Inc()
		s.writeBackoff(w, http.StatusTooManyRequests,
			"saturated: %d queries admitted (limit %d running + %d queued)",
			s.admitLimit, s.cfg.MaxConcurrent, s.cfg.MaxQueue)
		return
	} else {
		s.mQueueDepth.Set(adm)
	}
	defer func() { s.mQueueDepth.Set(s.admitted.Add(-1)) }()

	var req spreadRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	key := s.DefaultKey()
	if s.cfg.Dynamic && (req.Model != nil || req.Epsilon != nil || req.Seed != nil) {
		s.writeError(w, http.StatusBadRequest,
			"dynamic mode serves one sketch configuration; model/epsilon/seed overrides are not available")
		return
	}
	if req.Model != nil {
		m, err := diffuse.ParseModel(*req.Model)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		key.Model = m
	}
	if req.Epsilon != nil {
		if *req.Epsilon <= 0 || *req.Epsilon >= 1 {
			s.writeError(w, http.StatusBadRequest, "epsilon = %v, want 0 < eps < 1", *req.Epsilon)
			return
		}
		key.Epsilon = *req.Epsilon
	}
	if req.Seed != nil {
		key.Seed = *req.Seed
	}
	if len(req.Seeds) == 0 {
		s.writeError(w, http.StatusBadRequest, "spread needs at least one seed")
		return
	}
	n := s.cfg.Graph.NumVertices()
	for _, v := range req.Seeds {
		if int(v) >= n {
			s.writeError(w, http.StatusBadRequest, "seed vertex %d out of range (n = %d)", v, n)
			return
		}
	}
	for _, v := range req.Audience {
		if int(v) >= n {
			s.writeError(w, http.StatusBadRequest, "audience vertex %d out of range (n = %d)", v, n)
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.QueryTimeout)
	defer cancel()
	select {
	case s.running <- struct{}{}:
		defer func() { <-s.running }()
	case <-ctx.Done():
		s.mTimeouts.Inc()
		s.writeBackoff(w, http.StatusServiceUnavailable, "queue wait exceeded: %v", ctx.Err())
		return
	}
	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)
	if s.testQueryHook != nil {
		s.testQueryHook()
	}

	var (
		sk  *Sketch
		hit bool
		err error
	)
	if s.cfg.Dynamic {
		sk, hit = s.dynSk.Load(), true
	} else {
		sk, hit, err = s.sketchFor(ctx, key)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.mTimeouts.Inc()
			s.writeBackoff(w, http.StatusServiceUnavailable,
				"sketch for (%s) still building: %v", key, err)
			return
		}
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "building sketch: %v", err)
			return
		}
	}

	start := time.Now()
	covered, eligible, err := sk.Spread(req.Seeds, req.Audience)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dur := time.Since(start)
	s.mQueries.Inc()
	s.mQuerySpread.Inc()
	s.mLatency.Observe(dur.Microseconds())

	resp := spreadResponse{
		Covered:    covered,
		Eligible:   eligible,
		Theta:      sk.Theta,
		Cached:     hit,
		Source:     sk.Source,
		DeltaEpoch: sk.DeltaEpoch,
	}
	if c := sk.Col.Count(); c > 0 {
		resp.CoverageFraction = float64(covered) / float64(c)
	}
	resp.EstimatedSpread = resp.CoverageFraction * float64(sk.Col.NumVertices())
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness: 200 while serving, 503 while draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics exposes the registry snapshot as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if snap == nil {
		snap = &metrics.Snapshot{}
	}
	writeJSON(w, http.StatusOK, snap)
}
