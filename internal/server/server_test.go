package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/metrics"
	"influmax/internal/rng"
	"influmax/internal/trace"
)

// testGraph builds a small random digraph with uniform IC weights, same
// recipe as the imm package tests.
func testGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(rng.NewLCG(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			b.Add(graph.Vertex(u), graph.Vertex(v), 0)
		}
	}
	g := b.Build()
	g.AssignUniform(seed ^ 0xbeef)
	return g
}

// testConfig is the shared server configuration for the suite: small
// enough that BuildSketch runs in well under a second.
func testConfig(g *graph.Graph) Config {
	return Config{
		Graph:   g,
		Model:   diffuse.IC,
		Epsilon: 0.5,
		KMax:    50,
		Seed:    42,
		Workers: 4,
	}
}

func postSeeds(t *testing.T, client *http.Client, url string, body string) (int, http.Header, seedsResponse) {
	t.Helper()
	resp, err := client.Post(url+"/v1/seeds", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/seeds: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	var sr seedsResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp.StatusCode, resp.Header, sr
}

// TestSeedsEquivalence is the tentpole acceptance gate: seeds served over
// HTTP for k in {1, 10, kMax} must be byte-identical to a fresh indexed
// selection at that k over the same samples, and at kMax to the full
// imm.Run answer.
func TestSeedsEquivalence(t *testing.T) {
	g := testGraph(7, 200, 1500)
	cfg := testConfig(g)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Reference: the identical pipeline run standalone. Same options =>
	// same theta, same samples, so selection at any k <= kMax must agree.
	res, col, idx, err := imm.RunCollect(g, imm.Options{
		K: cfg.KMax, Epsilon: cfg.Epsilon, Model: cfg.Model,
		Workers: cfg.Workers, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 10, cfg.KMax} {
		status, _, got := postSeeds(t, ts.Client(), ts.URL, fmt.Sprintf(`{"k":%d}`, k))
		if status != http.StatusOK {
			t.Fatalf("k=%d: status %d", k, status)
		}
		wantSeeds, wantCov := imm.SelectSeedsIndexed(col, idx, k, cfg.Workers)
		if !slices.Equal(got.Seeds, wantSeeds) {
			t.Fatalf("k=%d: served seeds %v != fresh selection %v", k, got.Seeds, wantSeeds)
		}
		if got.Theta != res.Theta {
			t.Fatalf("k=%d: served theta %d != run theta %d", k, got.Theta, res.Theta)
		}
		if got.Report == nil || got.Report.CoverageFraction != float64(wantCov)/float64(col.Count()) {
			t.Fatalf("k=%d: report coverage mismatch", k)
		}
		if got.Source != "sampled" || !got.Cached {
			t.Fatalf("k=%d: source=%q cached=%v, want sampled/true after Prewarm", k, got.Source, got.Cached)
		}
	}
	// At kMax the served answer is exactly the batch pipeline's answer.
	status, _, got := postSeeds(t, ts.Client(), ts.URL, fmt.Sprintf(`{"k":%d}`, cfg.KMax))
	if status != http.StatusOK || !slices.Equal(got.Seeds, res.Seeds) {
		t.Fatalf("k=kMax: served %v != imm.Run %v", got.Seeds, res.Seeds)
	}
}

// TestSnapshotWarmStart: a server started from a snapshot answers its
// first query with zero estimation/sampling time in the report, and with
// the same seeds the sampling server serves.
func TestSnapshotWarmStart(t *testing.T) {
	g := testGraph(7, 200, 1500)
	cfg := testConfig(g)

	built, err := BuildSketch(g, SketchKey{
		GraphDigest: g.Digest(), Model: cfg.Model, Epsilon: cfg.Epsilon,
		KMax: cfg.KMax, Seed: cfg.Seed,
	}, cfg.Workers, cfg.Schedule, cfg.Kernel, imm.StoreFlat, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sketch.snap")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSketch(path, g, cfg.Workers, imm.StoreFlat, 0)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Sketch = loaded
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, got := postSeeds(t, ts.Client(), ts.URL, `{"k":10}`)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if got.Source != "snapshot" || !got.Cached {
		t.Fatalf("source=%q cached=%v, want snapshot/true", got.Source, got.Cached)
	}
	if got.Report == nil {
		t.Fatal("no report")
	}
	for _, phase := range []trace.Phase{trace.Estimation, trace.Sampling} {
		if sec := got.Report.PhaseSeconds[phase.String()]; sec != 0 {
			t.Fatalf("warm start spent %v s in %s, want 0", sec, phase)
		}
	}
	if got.Report.PhaseSeconds[trace.SelectSeeds.String()] <= 0 {
		t.Fatal("report is missing the query's selection time")
	}
	wantSeeds, _ := built.Query(10, cfg.Workers)
	if !slices.Equal(got.Seeds, wantSeeds) {
		t.Fatalf("warm-start seeds %v != sampled sketch seeds %v", got.Seeds, wantSeeds)
	}
	if s.mBuilds.Value() != 0 {
		t.Fatalf("warm start triggered %d sketch builds", s.mBuilds.Value())
	}
}

// TestSaturationReturns429: with the pool full and the queue full, the
// next query is rejected immediately with 429 + Retry-After instead of
// queueing.
func TestSaturationReturns429(t *testing.T) {
	g := testGraph(7, 120, 800)
	cfg := testConfig(g)
	cfg.KMax = 20
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	s.testQueryHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 2)
	post := func() {
		status, _, _ := postSeeds(t, ts.Client(), ts.URL, `{"k":5}`)
		done <- status
	}
	go post() // occupies the pool, parked in the hook
	<-entered
	go post() // admitted, waiting for a pool slot
	for s.admitted.Load() != 2 {
		time.Sleep(time.Millisecond)
	}

	// Third query: past MaxConcurrent+MaxQueue, must bounce.
	status, hdr, _ := postSeeds(t, ts.Client(), ts.URL, `{"k":5}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated query got %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.mRejected.Value() != 1 {
		t.Fatalf("rejected counter = %d, want 1", s.mRejected.Value())
	}

	close(release)
	for i := 0; i < 2; i++ {
		if st := <-done; st != http.StatusOK {
			t.Fatalf("parked query %d finished with %d, want 200", i, st)
		}
	}
}

// TestQueueWaitTimeout: a query that cannot get a pool slot within
// QueryTimeout is answered 503 + Retry-After.
func TestQueueWaitTimeout(t *testing.T) {
	g := testGraph(7, 120, 800)
	cfg := testConfig(g)
	cfg.KMax = 20
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 4
	cfg.QueryTimeout = 30 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	s.testQueryHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		status, _, _ := postSeeds(t, ts.Client(), ts.URL, `{"k":5}`)
		done <- status
	}()
	<-entered

	status, hdr, _ := postSeeds(t, ts.Client(), ts.URL, `{"k":5}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("queued-past-timeout query got %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if s.mTimeouts.Value() != 1 {
		t.Fatalf("timeouts counter = %d, want 1", s.mTimeouts.Value())
	}
	close(release)
	if st := <-done; st != http.StatusOK {
		t.Fatalf("parked query finished with %d", st)
	}
}

// TestShutdownDrains: Shutdown completes in-flight queries, flips health
// to draining, and refuses new work.
func TestShutdownDrains(t *testing.T) {
	g := testGraph(7, 120, 800)
	cfg := testConfig(g)
	cfg.KMax = 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testQueryHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		status, _, _ := postSeeds(t, ts.Client(), ts.URL, `{"k":5}`)
		inflight <- status
	}()
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	if status, _, _ := postSeeds(t, ts.Client(), ts.URL, `{"k":5}`); status != http.StatusServiceUnavailable {
		t.Fatalf("new query while draining = %d, want 503", status)
	}

	close(release)
	if st := <-inflight; st != http.StatusOK {
		t.Fatalf("in-flight query finished with %d, want 200 (drain must not kill it)", st)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestStartServesRealSocket: the Start/Shutdown pair over a real TCP
// listener, as cmd/immserve drives it.
func TestStartServesRealSocket(t *testing.T) {
	g := testGraph(7, 120, 800)
	cfg := testConfig(g)
	cfg.KMax = 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	status, _, got := postSeeds(t, http.DefaultClient, base, `{"k":3}`)
	if status != http.StatusOK || len(got.Seeds) != 3 {
		t.Fatalf("seeds over socket: status=%d seeds=%v", status, got.Seeds)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestSeedsBadRequests: malformed queries are 400s with a JSON error, not
// 500s and not sketch builds.
func TestSeedsBadRequests(t *testing.T) {
	g := testGraph(7, 120, 800)
	cfg := testConfig(g)
	cfg.KMax = 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"k zero", `{"k":0}`},
		{"k past kMax", `{"k":21}`},
		{"negative k", `{"k":-4}`},
		{"bad model", `{"k":5,"model":"percolation"}`},
		{"bad epsilon", `{"k":5,"epsilon":2.0}`},
		{"not json", `seeds please`},
		{"empty body", ``},
	}
	for _, tc := range cases {
		status, _, _ := postSeeds(t, ts.Client(), ts.URL, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
		}
	}
	if s.mBuilds.Value() != 0 {
		t.Fatalf("bad requests triggered %d sketch builds", s.mBuilds.Value())
	}

	// Wrong method on the query route.
	resp, err := ts.Client().Get(ts.URL + "/v1/seeds")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/seeds = %d, want 405", resp.StatusCode)
	}
}

// TestQueryOverrideSelectsSecondSketch: overriding the sampling seed in
// the request populates a second cache slot with its own theta samples.
func TestQueryOverrideSelectsSecondSketch(t *testing.T) {
	g := testGraph(7, 120, 800)
	cfg := testConfig(g)
	cfg.KMax = 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, a := postSeeds(t, ts.Client(), ts.URL, `{"k":5}`)
	if status != http.StatusOK {
		t.Fatalf("default query: %d", status)
	}
	status, _, b := postSeeds(t, ts.Client(), ts.URL, `{"k":5,"seed":1234}`)
	if status != http.StatusOK {
		t.Fatalf("override query: %d", status)
	}
	if a.Report.Seed == b.Report.Seed {
		t.Fatal("override did not change the sampling seed")
	}
	if s.mBuilds.Value() != 2 {
		t.Fatalf("builds = %d, want 2 (one per configuration)", s.mBuilds.Value())
	}
	if got := s.mSketches.Value(); got != 2 {
		t.Fatalf("resident sketches gauge = %d, want 2", got)
	}
}

// TestMetricsEndpoint: /v1/metrics exposes the registry snapshot with the
// server-side instrumentation.
func TestMetricsEndpoint(t *testing.T) {
	g := testGraph(7, 120, 800)
	cfg := testConfig(g)
	cfg.KMax = 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if status, _, _ := postSeeds(t, ts.Client(), ts.URL, `{"k":5}`); status != http.StatusOK {
		t.Fatalf("query failed: %d", status)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server/queries"] != 1 {
		t.Fatalf("server/queries = %d, want 1 (snapshot: %+v)", snap.Counters["server/queries"], snap)
	}
	if snap.Counters["server/sketch-builds"] != 1 {
		t.Fatalf("server/sketch-builds = %d, want 1", snap.Counters["server/sketch-builds"])
	}
	if h := snap.Histograms["server/query-us"]; h == nil || h.Count != 1 {
		t.Fatalf("server/query-us histogram = %+v, want one observation", h)
	}
}

// TestNewValidation: New rejects unusable configurations up front.
func TestNewValidation(t *testing.T) {
	g := testGraph(7, 50, 300)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"kMax zero", func(c *Config) { c.KMax = 0 }},
		{"kMax past n", func(c *Config) { c.KMax = 51 }},
		{"epsilon zero", func(c *Config) { c.Epsilon = 0 }},
		{"epsilon one", func(c *Config) { c.Epsilon = 1 }},
		{"foreign sketch", func(c *Config) {
			c.Sketch = &Sketch{Key: SketchKey{GraphDigest: 0xdead}}
		}},
	}
	for _, tc := range cases {
		cfg := testConfig(g)
		cfg.KMax = 10
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted the config", tc.name)
		}
	}
}

// TestPprofOptIn: the pprof mux is absent by default and present when
// enabled.
func TestPprofOptIn(t *testing.T) {
	g := testGraph(7, 50, 300)
	cfg := testConfig(g)
	cfg.KMax = 10
	for _, enable := range []bool{false, true} {
		cfg.EnablePprof = enable
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		resp, err := ts.Client().Get(ts.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ts.Close()
		if enable && resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof enabled but /debug/pprof/cmdline = %d", resp.StatusCode)
		}
		if !enable && resp.StatusCode == http.StatusOK {
			t.Fatal("pprof served without opt-in")
		}
	}
}

// TestConcurrentQueriesShareSketch drives parallel queries with mixed k
// through the full HTTP stack — the race-detector target for the
// copy-on-read claim end to end.
func TestConcurrentQueriesShareSketch(t *testing.T) {
	g := testGraph(7, 150, 1000)
	cfg := testConfig(g)
	cfg.KMax = 20
	cfg.MaxConcurrent = 8
	cfg.MaxQueue = 64
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sk, _, err := s.sketchFor(context.Background(), s.DefaultKey())
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]graph.Vertex{}
	for _, k := range []int{1, 5, 20} {
		want[k], _ = imm.SelectSeedsSketch(sk.Col, sk.Idx, k, cfg.Workers)
	}

	const rounds = 24
	errs := make(chan error, rounds)
	for i := 0; i < rounds; i++ {
		k := []int{1, 5, 20}[i%3]
		go func(k int) {
			status, _, got := postSeeds(t, ts.Client(), ts.URL, fmt.Sprintf(`{"k":%d}`, k))
			if status != http.StatusOK {
				errs <- fmt.Errorf("k=%d: status %d", k, status)
				return
			}
			if !slices.Equal(got.Seeds, want[k]) {
				errs <- fmt.Errorf("k=%d: %v != %v", k, got.Seeds, want[k])
				return
			}
			errs <- nil
		}(k)
	}
	for i := 0; i < rounds; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRequestBodyTooLarge: the body reader is capped.
func TestRequestBodyTooLarge(t *testing.T) {
	g := testGraph(7, 50, 300)
	cfg := testConfig(g)
	cfg.KMax = 10
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The padding sits inside the JSON value, so the decoder must read
	// past the 1 MiB cap to finish it.
	huge := `{"k":5,"model":"` + strings.Repeat("a", (1<<20)+64) + `"}`
	status, _, _ := postSeeds(t, ts.Client(), ts.URL, huge)
	if status != http.StatusBadRequest {
		t.Fatalf("oversized body = %d, want 400", status)
	}
}
