package server

import (
	"fmt"
	"sync"
	"time"

	"influmax/internal/diffuse"
	"influmax/internal/graph"
	"influmax/internal/imm"
	"influmax/internal/metrics"
	"influmax/internal/rrr"
	"influmax/internal/trace"
)

// SketchKey identifies one sketch configuration: the graph (by content
// digest) and the sampling parameters theta was sized for. Two queries
// with equal keys are served from the same resident sketch.
type SketchKey struct {
	GraphDigest uint64
	Model       diffuse.Model
	Epsilon     float64
	KMax        int
	Seed        uint64
}

// String renders the key for logs and error messages.
func (k SketchKey) String() string {
	return fmt.Sprintf("graph=%016x model=%s eps=%g kmax=%d seed=%d",
		k.GraphDigest, k.Model, k.Epsilon, k.KMax, k.Seed)
}

// Sketch is a resident, immutable, query-ready RRR sample store: the
// byte-coded collection of theta samples, its inverted incidence index,
// and the build bookkeeping that rides into per-query RunReports. All
// fields are read-only after construction; queries operate exclusively on
// copy-on-read state, so a single Sketch serves any number of concurrent
// queries.
type Sketch struct {
	// Key identifies the configuration the sketch was sampled for.
	Key SketchKey
	// Col holds the theta byte-coded samples: delta+varint payloads under
	// the identity labeling (imm.StoreFlat) or the frequency-ordered
	// relabeling (imm.StoreCoded); see DESIGN.md §13.
	Col *rrr.CodedCollection
	// Idx is the CSR vertex -> sample-ids inverted incidence of Col.
	Idx *rrr.Index
	// Theta is the sample count Algorithm 2 settled on.
	Theta int64
	// LowerBound is the martingale lower bound on OPT (zero when the
	// sketch was loaded from a snapshot, which does not persist it).
	LowerBound float64
	// Source records provenance: "sampled" (built in-process) or
	// "snapshot" (loaded from disk).
	Source string
	// BuildPhases is the wall-clock breakdown of building the sketch
	// (estimation, sampling, index build — all zero for a snapshot load,
	// which is the point of having one).
	BuildPhases trace.Times
	// Deltas is the replayable delta log behind this sketch: nil for a
	// static sketch, else one entry per batch folded in since the base
	// graph (Key.GraphDigest always names the BASE graph). Persisted by
	// Save so a warm restart can replay the mutations.
	Deltas []graph.Delta
	// DeltaEpoch and DeltaStats summarize the maintenance that produced
	// this sketch (zero for static sketches); they ride into RunReports.
	DeltaEpoch uint64
	DeltaStats imm.DeltaStats

	// rootsOnce/roots back Roots(): the per-sample root column, derived
	// lazily on the first audience-filtered query.
	rootsOnce sync.Once
	roots     []graph.Vertex
}

// Roots returns the per-sample root column — sample i's root is the first
// draw of its PerSample stream, a pure function of (seed, i, n) — derived
// lazily and cached. The column survives delta maintenance untouched:
// dynamic updates rebuild sample tails but never reseed the streams, so
// roots are invariant across epochs. Safe for concurrent callers.
func (s *Sketch) Roots() []graph.Vertex {
	s.rootsOnce.Do(func() {
		s.roots = imm.RootsRange(s.Key.Seed, s.Col.Count(), s.Col.NumVertices(), 0)
	})
	return s.roots
}

// QueryEx runs the general query shapes of DESIGN.md §17 — budgeted,
// targeted, blocked, or any combination (a plain q reproduces Query
// byte-identically). Copy-on-read like Query: safe for any number of
// concurrent callers.
func (s *Sketch) QueryEx(q imm.Query, p int) (*imm.QueryResult, error) {
	var roots []graph.Vertex
	if len(q.Audience) > 0 {
		roots = s.Roots()
	}
	return imm.SelectQuerySketch(s.Col, s.Idx, roots, q, p)
}

// Spread estimates the coverage of a caller-supplied seed set: how many
// of the sketch's samples (optionally restricted to audience-rooted ones)
// the set covers, and how many were eligible. The RIS estimate of the
// seed set's influence is n * covered / Col.Count().
func (s *Sketch) Spread(seeds, audience []graph.Vertex) (covered, eligible int64, err error) {
	var roots []graph.Vertex
	if len(audience) > 0 {
		roots = s.Roots()
	}
	return imm.CoverageOf(s.Col.Count(), s.Idx, roots, seeds, audience)
}

// BuildSketch samples a sketch for key over g: the full estimation +
// sampling pipeline of Algorithm 1 at K = key.KMax, transcoded into the
// byte-coded store selected by store (imm.StoreCoded adds the
// frequency-ordered relabeling; imm.StoreFlat keeps the identity
// labeling). The plain arena is dropped after transcoding; the index the
// run built over the coded store is reused as-is. schedule picks the
// sampling-loop schedule; the sketch content does not depend on it
// (builds run in PerSample RNG mode), and the query seeds do not depend
// on store. kernel picks the sampling kernel; builds run in PerSample
// RNG mode, where the fused and scalar kernels are byte-identical, so it
// is a pure speed knob.
func BuildSketch(g *graph.Graph, key SketchKey, workers int, schedule imm.Schedule, kernel imm.Kernel, store imm.StoreKind, reg *metrics.Registry) (*Sketch, error) {
	opt := imm.Options{
		K: key.KMax, Epsilon: key.Epsilon, Model: key.Model,
		Workers: workers, Seed: key.Seed, Schedule: schedule,
		Kernel: kernel, Store: store, Metrics: reg,
	}
	res, coded, idx, err := imm.RunSketch(g, opt)
	if err != nil {
		return nil, err
	}
	return &Sketch{
		Key:         key,
		Col:         coded,
		Idx:         idx,
		Theta:       res.Theta,
		LowerBound:  res.LowerBound,
		Source:      "sampled",
		BuildPhases: res.Phases,
	}, nil
}

// Query runs indexed greedy selection for k seeds over the sketch with p
// workers, returning the seeds in selection order and the number of
// samples they cover. Byte-identical to a fresh imm selection at the same
// k over the same samples, for any worker count, and safe for any number
// of concurrent callers.
func (s *Sketch) Query(k, p int) ([]graph.Vertex, int64) {
	return imm.SelectSeedsSketch(s.Col, s.Idx, k, p)
}

// Store reports the store kind the sketch's collection is coded under.
func (s *Sketch) Store() imm.StoreKind {
	if s.Col.Relabeled() {
		return imm.StoreCoded
	}
	return imm.StoreFlat
}

// Meta returns the snapshot meta block identifying this sketch.
func (s *Sketch) Meta() rrr.SnapshotMeta {
	return rrr.SnapshotMeta{
		GraphDigest: s.Key.GraphDigest,
		Model:       uint8(s.Key.Model),
		Epsilon:     s.Key.Epsilon,
		KMax:        s.Key.KMax,
		Seed:        s.Key.Seed,
		Theta:       s.Theta,
	}
}

// Save persists the sketch (samples + index + delta log) at path in the
// versioned, checksummed snapshot format, atomically.
func (s *Sketch) Save(path string) error {
	return rrr.SaveSnapshotFile(path, s.Meta(), s.Col, s.Idx, s.Deltas)
}

// LoadSketch reads a snapshot from path and validates it against g: the
// stored graph digest must match, so a sketch is never served against a
// graph it was not sampled from. store selects the labeling the loaded
// sketch must run under; a snapshot written with the other labeling is
// transcoded once at load time (decode + re-encode — still orders of
// magnitude cheaper than resampling, and the index is label-invariant so
// it carries over untouched). A snapshot written without an index gets
// one rebuilt (workers-wide). maxBytes <= 0 uses
// rrr.DefaultMaxSnapshotBytes.
func LoadSketch(path string, g *graph.Graph, workers int, store imm.StoreKind, maxBytes int64) (*Sketch, error) {
	start := time.Now()
	meta, col, idx, deltas, err := rrr.LoadSnapshotFile(path, maxBytes)
	if err != nil {
		return nil, err
	}
	if got := g.Digest(); meta.GraphDigest != got {
		return nil, fmt.Errorf("server: snapshot %s was sampled from graph %016x, loaded graph is %016x",
			path, meta.GraphDigest, got)
	}
	if col.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("server: snapshot %s covers %d vertices, graph has %d",
			path, col.NumVertices(), g.NumVertices())
	}
	if meta.KMax < 1 {
		return nil, fmt.Errorf("server: snapshot %s has kMax %d", path, meta.KMax)
	}
	if wantCoded := store == imm.StoreCoded; wantCoded != col.Relabeled() {
		// Cross-load: re-express every sample under the labeling this
		// server runs. The relabel table for the coded direction is rebuilt
		// from the samples' own incidence frequencies — the same table the
		// sampling path would have produced, since it is a pure function of
		// the sample set.
		var relab *rrr.Relabeling
		if wantCoded {
			freq := make([]int32, col.NumVertices())
			col.CountAll(freq, nil)
			relab = rrr.NewRelabeling(freq)
		}
		col = col.Recode(relab)
	}
	s := &Sketch{
		Key: SketchKey{
			GraphDigest: meta.GraphDigest,
			Model:       diffuse.Model(meta.Model),
			Epsilon:     meta.Epsilon,
			KMax:        meta.KMax,
			Seed:        meta.Seed,
		},
		Col:        col,
		Idx:        idx,
		Theta:      meta.Theta,
		Source:     "snapshot",
		Deltas:     deltas,
		DeltaEpoch: uint64(len(deltas)),
	}
	if s.Idx == nil {
		s.Idx = rrr.BuildIndexCoded(col, workers)
	}
	// The load itself is accounted to Other; estimation/sampling stay
	// zero — the warm start the snapshot exists for.
	s.BuildPhases.Add(trace.Other, time.Since(start))
	return s, nil
}

// report assembles the per-query RunReport: the sketch's build breakdown
// (zero sampling for a snapshot warm-start) plus this query's selection
// time and outcome.
func (s *Sketch) report(k, workers int, selectDur time.Duration, seeds []graph.Vertex, covered int64) *metrics.RunReport {
	phases := s.BuildPhases
	phases.Add(trace.SelectSeeds, selectDur)
	rep := metrics.NewRunReport("IMMserve", phases)
	rep.Model = s.Key.Model.String()
	rep.K = k
	rep.Epsilon = s.Key.Epsilon
	rep.Seed = s.Key.Seed
	rep.Workers = workers
	rep.Theta = s.Theta
	rep.SamplesGenerated = int64(s.Col.Count())
	rep.LowerBound = s.LowerBound
	rep.Seeds = seeds
	if c := s.Col.Count(); c > 0 {
		rep.CoverageFraction = float64(covered) / float64(c)
	}
	rep.EstimatedSpread = rep.CoverageFraction * float64(s.Col.NumVertices())
	rep.Store = s.Store().String()
	rep.StoreBytes = s.Col.Bytes()
	rep.FlatStoreBytes = s.Col.FlatBytes()
	rep.IndexBytes = s.Idx.Bytes()
	rep.DeltaEpoch = s.DeltaEpoch
	rep.DeltasApplied = s.DeltaStats.DeltasApplied
	rep.SamplesInvalidated = s.DeltaStats.SamplesInvalidated
	rep.SamplesExtended = s.DeltaStats.SamplesExtended
	return rep
}
