package stats

import (
	"math"
	"sort"
)

// HypergeomPMF returns the probability of drawing exactly k successes in a
// sample of size n from a population of size N containing K successes.
func HypergeomPMF(N, K, n, k int64) float64 {
	lp := LogBinomial(K, k) + LogBinomial(N-K, n-k) - LogBinomial(N, n)
	if math.IsInf(lp, -1) {
		return 0
	}
	return math.Exp(lp)
}

// FisherExactGreater returns the one-sided p-value of Fisher's exact test
// for over-representation (enrichment): the probability of observing k or
// more successes in a sample of size n drawn without replacement from a
// population of size N containing K successes. This is the test Section 5
// applies to pathway membership of the IMM seed set.
func FisherExactGreater(N, K, n, k int64) float64 {
	if N < 0 || K < 0 || n < 0 || k < 0 || K > N || n > N {
		panic("stats: invalid Fisher contingency parameters")
	}
	hi := n
	if K < hi {
		hi = K
	}
	if k > hi {
		return 0
	}
	p := 0.0
	for i := k; i <= hi; i++ {
		p += HypergeomPMF(N, K, n, i)
	}
	if p > 1 {
		p = 1
	}
	return p
}

// BenjaminiHochberg returns the BH-adjusted p-values (false discovery rate
// control) of pvals, preserving input order.
func BenjaminiHochberg(pvals []float64) []float64 {
	m := len(pvals)
	adj := make([]float64, m)
	if m == 0 {
		return adj
	}
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pvals[idx[a]] < pvals[idx[b]] })
	// adjusted p_(i) = min_{j >= i} ( m * p_(j) / j ), capped at 1.
	running := 1.0
	for r := m - 1; r >= 0; r-- {
		i := idx[r]
		v := pvals[i] * float64(m) / float64(r+1)
		if v < running {
			running = v
		}
		adj[i] = running
	}
	return adj
}
