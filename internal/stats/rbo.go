package stats

import "math"

// RBO computes the extrapolated rank-biased overlap (Webber, Moffat and
// Zobel, 2010, eq. 32) between two rankings without ties. The persistence
// parameter p in (0, 1) weights the top of the rankings more heavily as it
// decreases; 0.9 is the customary default. The result is in [0, 1], where
// 1 means the rankings agree at every examined depth.
//
// The paper uses rank-biased overlap to validate that the IMM and IMMopt
// implementations select essentially the same seed sets despite different
// pseudorandom streams ("we observed high rank-biased overlaps of the two
// outputs").
func RBO(a, b []uint32, p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: RBO persistence must be in (0,1)")
	}
	// Order so that s = |S| <= |L| = l.
	s, l := a, b
	if len(s) > len(l) {
		s, l = l, s
	}
	sLen, lLen := len(s), len(l)
	if lLen == 0 {
		return 1 // two empty rankings agree vacuously
	}

	// X[d] = |S[:min(d,s)] ∩ L[:d]|, computed incrementally.
	inS := make(map[uint32]bool, sLen)
	inL := make(map[uint32]bool, lLen)
	X := make([]float64, lLen+1)
	overlap := 0.0
	for d := 1; d <= lLen; d++ {
		y := l[d-1]
		if inL[y] {
			panic("stats: RBO ranking contains duplicates")
		}
		if d <= sLen {
			x := s[d-1]
			if inS[x] {
				panic("stats: RBO ranking contains duplicates")
			}
			switch {
			case x == y:
				overlap++
			default:
				if inL[x] {
					overlap++
				}
				if inS[y] {
					overlap++
				}
			}
			inS[x] = true
		} else if inS[y] {
			overlap++
		}
		inL[y] = true
		X[d] = overlap
	}

	sum1 := 0.0
	for d := 1; d <= lLen; d++ {
		sum1 += X[d] / float64(d) * math.Pow(p, float64(d))
	}
	Xs, Xl := X[sLen], X[lLen]
	sum2 := 0.0
	for d := sLen + 1; d <= lLen; d++ {
		sum2 += Xs * float64(d-sLen) / (float64(sLen) * float64(d)) * math.Pow(p, float64(d))
	}
	ext := ((Xl-Xs)/float64(lLen) + Xs/float64(sLen)) * math.Pow(p, float64(lLen))
	return (1-p)/p*(sum1+sum2) + ext
}
