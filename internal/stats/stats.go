// Package stats provides the mathematical and statistical helpers used
// across the reproduction: log-binomial coefficients (the theta-estimation
// formulas of IMM), descriptive statistics, rank-biased overlap (the metric
// the paper uses to validate IMM vs IMMopt seed sets), Fisher's exact test
// and Benjamini-Hochberg adjustment (the Section 5 enrichment analysis).
package stats

import (
	"math"
	"sort"
)

// LogBinomial returns ln(n choose k). It is exact up to floating point via
// the log-gamma function. Out-of-range k yields -Inf (an impossible event).
func LogBinomial(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema of xs; it panics on empty input.
func MinMax(xs []float64) (minV, maxV float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// GeoMean returns the geometric mean of strictly positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Harmonic returns the n-th harmonic number H_n.
func Harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}
