package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestLogBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int64
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
		{1, 1, 0},
	}
	for _, c := range cases {
		approx(t, "LogBinomial", LogBinomial(c.n, c.k), c.want, 1e-9)
	}
}

func TestLogBinomialOutOfRange(t *testing.T) {
	if !math.IsInf(LogBinomial(5, 6), -1) || !math.IsInf(LogBinomial(5, -1), -1) {
		t.Fatal("out-of-range k should be -Inf")
	}
}

func TestLogBinomialSymmetry(t *testing.T) {
	check := func(n uint16, k uint16) bool {
		nn := int64(n%1000) + 1
		kk := int64(k) % (nn + 1)
		return math.Abs(LogBinomial(nn, kk)-LogBinomial(nn, nn-kk)) < 1e-7
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogBinomialPascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) in log space for moderate n.
	for n := int64(2); n < 60; n++ {
		for k := int64(1); k < n; k++ {
			lhs := math.Exp(LogBinomial(n, k))
			rhs := math.Exp(LogBinomial(n-1, k-1)) + math.Exp(LogBinomial(n-1, k))
			if math.Abs(lhs-rhs)/rhs > 1e-9 {
				t.Fatalf("Pascal identity fails at (%d, %d)", n, k)
			}
		}
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Mean", Mean(xs), 5, 1e-12)
	approx(t, "Variance", Variance(xs), 32.0/7.0, 1e-12)
	approx(t, "StdDev", StdDev(xs), math.Sqrt(32.0/7.0), 1e-12)
	mn, mx := MinMax(xs)
	if mn != 2 || mx != 9 {
		t.Fatalf("MinMax = (%v, %v)", mn, mx)
	}
}

func TestDescriptiveDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Fatal("degenerate inputs mishandled")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, "median", Quantile(xs, 0.5), 3, 1e-12)
	approx(t, "min", Quantile(xs, 0), 1, 1e-12)
	approx(t, "max", Quantile(xs, 1), 5, 1e-12)
	approx(t, "q25", Quantile(xs, 0.25), 2, 1e-12)
	approx(t, "interp", Quantile([]float64{0, 10}, 0.35), 3.5, 1e-12)
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
		func() { MinMax(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGeoMean(t *testing.T) {
	approx(t, "GeoMean", GeoMean([]float64{1, 4, 16}), 4, 1e-9)
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
}

func TestHarmonic(t *testing.T) {
	approx(t, "H_4", Harmonic(4), 1+0.5+1.0/3+0.25, 1e-12)
	if Harmonic(0) != 0 {
		t.Fatal("H_0 != 0")
	}
}

func TestRBOIdentical(t *testing.T) {
	a := []uint32{1, 2, 3, 4, 5}
	approx(t, "RBO(identical)", RBO(a, a, 0.9), 1, 1e-12)
}

func TestRBODisjoint(t *testing.T) {
	a := []uint32{1, 2, 3}
	b := []uint32{4, 5, 6}
	approx(t, "RBO(disjoint)", RBO(a, b, 0.9), 0, 1e-12)
}

func TestRBOSymmetric(t *testing.T) {
	a := []uint32{1, 2, 3, 4}
	b := []uint32{2, 1, 5, 3, 9}
	approx(t, "RBO symmetry", RBO(a, b, 0.8)-RBO(b, a, 0.8), 0, 1e-12)
}

func TestRBORange(t *testing.T) {
	check := func(seed uint64) bool {
		// Build two random permutations of a small universe.
		a := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
		b := append([]uint32(nil), a...)
		x := seed
		for i := len(b) - 1; i > 0; i-- {
			x = x*6364136223846793005 + 1442695040888963407
			j := int(x % uint64(i+1))
			b[i], b[j] = b[j], b[i]
		}
		v := RBO(a, b, 0.9)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRBOTopWeighted(t *testing.T) {
	// Agreement at the top must score higher than agreement at the bottom.
	ref := []uint32{1, 2, 3, 4, 5, 6}
	topAgree := []uint32{1, 2, 3, 9, 8, 7}
	botAgree := []uint32{9, 8, 7, 4, 5, 6}
	if RBO(ref, topAgree, 0.9) <= RBO(ref, botAgree, 0.9) {
		t.Fatal("RBO does not weight the top of the ranking")
	}
}

func TestRBOPanics(t *testing.T) {
	for _, f := range []func(){
		func() { RBO([]uint32{1}, []uint32{1}, 0) },
		func() { RBO([]uint32{1}, []uint32{1}, 1) },
		func() { RBO([]uint32{1, 1}, []uint32{1, 2}, 0.9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	N, K, n := int64(30), int64(12), int64(9)
	sum := 0.0
	for k := int64(0); k <= n; k++ {
		sum += HypergeomPMF(N, K, n, k)
	}
	approx(t, "hypergeom total mass", sum, 1, 1e-9)
}

func TestFisherExactKnownValue(t *testing.T) {
	// Classic 2x2 table: population 24, 8 successes, sample 8.
	// P(X >= 5) with N=24, K=8, n=8.
	want := 0.0
	for k := int64(5); k <= 8; k++ {
		want += HypergeomPMF(24, 8, 8, k)
	}
	approx(t, "Fisher", FisherExactGreater(24, 8, 8, 5), want, 1e-12)
	// Sanity: must be small (observing 5+ of 8 successes in a sample of 8
	// when only a third of the population are successes).
	if p := FisherExactGreater(24, 8, 8, 5); p > 0.05 {
		t.Fatalf("enrichment p-value suspiciously large: %v", p)
	}
}

func TestFisherExactEdge(t *testing.T) {
	approx(t, "k=0", FisherExactGreater(10, 5, 4, 0), 1, 1e-12)
	if p := FisherExactGreater(10, 5, 4, 5); p != 0 {
		t.Fatalf("impossible k should give 0, got %v", p)
	}
}

func TestFisherMonotoneInK(t *testing.T) {
	prev := 1.1
	for k := int64(0); k <= 8; k++ {
		p := FisherExactGreater(100, 20, 8, k)
		if p > prev+1e-12 {
			t.Fatalf("p-value not monotone decreasing in k at %d", k)
		}
		prev = p
	}
}

func TestBenjaminiHochberg(t *testing.T) {
	ps := []float64{0.01, 0.04, 0.03, 0.005}
	adj := BenjaminiHochberg(ps)
	// Sorted p: .005, .01, .03, .04 -> raw adj: .02, .02, .04, .04; after
	// the monotone pass (from the largest down): .02, .02, .04, .04.
	want := []float64{0.02, 0.04, 0.04, 0.02}
	for i := range ps {
		approx(t, "BH", adj[i], want[i], 1e-12)
	}
}

func TestBenjaminiHochbergProperties(t *testing.T) {
	check := func(raw []float64) bool {
		ps := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			v -= math.Floor(v) // into [0,1)
			ps = append(ps, v)
		}
		adj := BenjaminiHochberg(ps)
		for i := range adj {
			if adj[i] < ps[i]-1e-12 || adj[i] > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBenjaminiHochbergEmpty(t *testing.T) {
	if len(BenjaminiHochberg(nil)) != 0 {
		t.Fatal("BH(nil) not empty")
	}
}
