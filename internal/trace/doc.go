// Package trace provides the phase instrumentation behind the paper's
// stacked-bar runtime figures: every IMM run is decomposed into the
// Estimation, Sample, SelectSeeds and Other phases of Algorithm 1
// (Figures 3-8), plus a coarse memory probe for Table 2.
//
// Mapping to the paper's Section 3 machinery:
//
//   - Phase enumerates the sections of Algorithm 1 exactly as the figure
//     legends name them: EstimateTheta is Algorithm 2 including the Sample
//     calls it makes internally ("the cost of the calls to Sample from
//     within the Estimation function are included as part of the
//     Estimation bars"), Sample is the direct Algorithm 3 invocation,
//     SelectSeeds is Algorithm 4, and Other is setup and accounting.
//   - Times accumulates wall-clock durations per phase; Measure wraps a
//     phase body the way the paper's implementations wrap their OpenMP
//     regions with timers. Merge combines breakdowns across restarts or
//     ranks (rank 0 of IMMdist merges nothing — each rank reports its own
//     breakdown; internal/metrics gathers them instead).
//   - HeapAlloc is the coarse stand-in for the Massif peak-memory probe of
//     Table 2; the precise quantity compared there (the RRR store size) is
//     accounted exactly by the rrr package's Bytes methods.
//
// Phase.String and AllPhases are the single source of phase-name truth:
// internal/metrics keys its RunReport phase map by Phase.String(), and the
// harness renders its table headers from the same names, so a figure
// legend, a JSON report and a markdown table can never disagree.
package trace
