package trace

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// Phase identifies a section of Algorithm 1.
type Phase int

const (
	// Estimation is Algorithm 2 including the Sample calls it makes
	// internally (the paper: "the cost of the calls to Sample from within
	// the Estimation function are included as part of the Estimation
	// bars").
	Estimation Phase = iota
	// Sampling is the direct call to Algorithm 3 from the skeleton.
	Sampling
	// IndexBuild is the construction of the inverted vertex->samples
	// incidence index over the finished collection, the lookup structure
	// the final SelectSeeds purges through. (Index builds inside the
	// estimation loop are accounted to Estimation, like the Sample calls
	// made there.)
	IndexBuild
	// SelectSeeds is the final Algorithm 4 invocation.
	SelectSeeds
	// Other is everything else (setup, allocation, accounting).
	Other

	numPhases
)

// phaseNames is the single source of phase-name truth: Phase.String,
// Times.String, the metrics RunReport keys and the harness table headers
// all render from this table.
var phaseNames = [numPhases]string{
	Estimation:  "EstimateTheta",
	Sampling:    "Sample",
	IndexBuild:  "BuildIndex",
	SelectSeeds: "SelectSeeds",
	Other:       "Other",
}

// String returns the phase name as used in the paper's legends.
func (p Phase) String() string {
	if p >= 0 && p < numPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// AllPhases returns every phase in legend order.
func AllPhases() []Phase {
	return []Phase{Estimation, Sampling, IndexBuild, SelectSeeds, Other}
}

// Times records the wall-clock duration of each phase.
type Times struct {
	d [numPhases]time.Duration
}

// Add accumulates d into phase p.
func (t *Times) Add(p Phase, d time.Duration) { t.d[p] += d }

// Get returns the accumulated duration of phase p.
func (t *Times) Get(p Phase) time.Duration { return t.d[p] }

// Total returns the sum over all phases.
func (t *Times) Total() time.Duration {
	var s time.Duration
	for _, d := range t.d {
		s += d
	}
	return s
}

// Measure runs fn and accumulates its wall-clock time into phase p.
func (t *Times) Measure(p Phase, fn func()) {
	start := time.Now()
	fn()
	t.d[p] += time.Since(start)
}

// Merge adds other's durations into t.
func (t *Times) Merge(other Times) {
	for i := range t.d {
		t.d[i] += other.d[i]
	}
}

// String formats the breakdown in legend order.
func (t *Times) String() string {
	var b strings.Builder
	for i, p := range AllPhases() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", p, t.d[p])
	}
	return b.String()
}

// Seconds returns the breakdown as a phase-name-keyed map of seconds, the
// form the metrics RunReport serializes.
func (t *Times) Seconds() map[string]float64 {
	m := make(map[string]float64, len(phaseNames))
	for _, p := range AllPhases() {
		m[p.String()] = t.d[p].Seconds()
	}
	return m
}

// HeapAlloc returns the current live-heap size in bytes; a coarse stand-in
// for the Massif peak-memory instrumentation of Table 2 (the precise
// quantity compared there — the RRR store size — is accounted exactly by
// the rrr package's Bytes methods).
func HeapAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
