package trace

import (
	"strings"
	"testing"
	"time"
)

// TestPhaseString is the table-driven single-source-of-truth check: every
// phase renders the exact paper legend name, and out-of-range values (both
// directions) degrade to the Phase(n) form instead of panicking.
func TestPhaseString(t *testing.T) {
	tests := []struct {
		p    Phase
		want string
	}{
		{Estimation, "EstimateTheta"},
		{Sampling, "Sample"},
		{IndexBuild, "BuildIndex"},
		{SelectSeeds, "SelectSeeds"},
		{Other, "Other"},
		{Phase(-1), "Phase(-1)"},
		{numPhases, "Phase(5)"},
		{Phase(99), "Phase(99)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Phase(%d).String() = %q, want %q", int(tt.p), got, tt.want)
		}
	}
}

// TestAllPhasesCoversEveryPhase pins AllPhases to the full legend-ordered
// enumeration, so consumers iterating it (metrics, harness) can never miss
// a phase added later.
func TestAllPhasesCoversEveryPhase(t *testing.T) {
	all := AllPhases()
	if len(all) != int(numPhases) {
		t.Fatalf("AllPhases() has %d entries, want %d", len(all), numPhases)
	}
	for i, p := range all {
		if p != Phase(i) {
			t.Errorf("AllPhases()[%d] = %v, want %v", i, p, Phase(i))
		}
	}
}

func TestAddGetTotal(t *testing.T) {
	var tm Times
	tm.Add(Estimation, 2*time.Second)
	tm.Add(Sampling, time.Second)
	tm.Add(Estimation, time.Second)
	if got := tm.Get(Estimation); got != 3*time.Second {
		t.Fatalf("Get(Estimation) = %v", got)
	}
	if got := tm.Total(); got != 4*time.Second {
		t.Fatalf("Total = %v", got)
	}
}

func TestMeasure(t *testing.T) {
	var tm Times
	tm.Measure(SelectSeeds, func() { time.Sleep(10 * time.Millisecond) })
	if got := tm.Get(SelectSeeds); got < 5*time.Millisecond {
		t.Fatalf("Measure recorded %v", got)
	}
	if tm.Get(Sampling) != 0 {
		t.Fatal("Measure leaked into another phase")
	}
}

func TestMerge(t *testing.T) {
	var a, b Times
	a.Add(Other, time.Second)
	b.Add(Other, 2*time.Second)
	b.Add(Sampling, time.Second)
	a.Merge(b)
	if a.Get(Other) != 3*time.Second || a.Get(Sampling) != time.Second {
		t.Fatalf("merge wrong: %v", a.String())
	}
}

// TestStringUsesPhaseNames checks Times.String renders through
// Phase.String (the single source of truth) for every phase, in legend
// order.
func TestStringUsesPhaseNames(t *testing.T) {
	var tm Times
	s := tm.String()
	prev := -1
	for _, p := range AllPhases() {
		idx := strings.Index(s, p.String()+"=")
		if idx < 0 {
			t.Fatalf("String() missing %s: %q", p, s)
		}
		if idx < prev {
			t.Fatalf("String() out of legend order: %q", s)
		}
		prev = idx
	}
}

func TestSecondsKeyedByPhaseNames(t *testing.T) {
	var tm Times
	tm.Add(Sampling, 1500*time.Millisecond)
	m := tm.Seconds()
	if len(m) != int(numPhases) {
		t.Fatalf("Seconds() has %d keys, want %d", len(m), numPhases)
	}
	for _, p := range AllPhases() {
		if _, ok := m[p.String()]; !ok {
			t.Fatalf("Seconds() missing key %q", p.String())
		}
	}
	if m[Sampling.String()] != 1.5 {
		t.Fatalf("Seconds()[Sample] = %v, want 1.5", m[Sampling.String()])
	}
}

func TestHeapAllocPositive(t *testing.T) {
	if HeapAlloc() == 0 {
		t.Fatal("HeapAlloc returned 0")
	}
}
