package trace

import (
	"strings"
	"testing"
	"time"
)

func TestPhaseNamesMatchPaperLegends(t *testing.T) {
	want := map[Phase]string{
		Estimation:  "EstimateTheta",
		Sampling:    "Sample",
		SelectSeeds: "SelectSeeds",
		Other:       "Other",
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), name)
		}
	}
	if Phase(99).String() == "" {
		t.Error("unknown phase has empty name")
	}
}

func TestAddGetTotal(t *testing.T) {
	var tm Times
	tm.Add(Estimation, 2*time.Second)
	tm.Add(Sampling, time.Second)
	tm.Add(Estimation, time.Second)
	if got := tm.Get(Estimation); got != 3*time.Second {
		t.Fatalf("Get(Estimation) = %v", got)
	}
	if got := tm.Total(); got != 4*time.Second {
		t.Fatalf("Total = %v", got)
	}
}

func TestMeasure(t *testing.T) {
	var tm Times
	tm.Measure(SelectSeeds, func() { time.Sleep(10 * time.Millisecond) })
	if got := tm.Get(SelectSeeds); got < 5*time.Millisecond {
		t.Fatalf("Measure recorded %v", got)
	}
	if tm.Get(Sampling) != 0 {
		t.Fatal("Measure leaked into another phase")
	}
}

func TestMerge(t *testing.T) {
	var a, b Times
	a.Add(Other, time.Second)
	b.Add(Other, 2*time.Second)
	b.Add(Sampling, time.Second)
	a.Merge(b)
	if a.Get(Other) != 3*time.Second || a.Get(Sampling) != time.Second {
		t.Fatalf("merge wrong: %v", a.String())
	}
}

func TestStringContainsAllPhases(t *testing.T) {
	var tm Times
	s := tm.String()
	for _, name := range []string{"EstimateTheta", "Sample", "SelectSeeds", "Other"} {
		if !strings.Contains(s, name) {
			t.Fatalf("String() missing %s: %q", name, s)
		}
	}
}

func TestHeapAllocPositive(t *testing.T) {
	if HeapAlloc() == 0 {
		t.Fatal("HeapAlloc returned 0")
	}
}
